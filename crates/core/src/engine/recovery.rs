//! Crash and power-failure recovery.
//!
//! Everything the controller needs is in persistent memory: the Flash
//! array (inherently non-volatile), the battery-backed SRAM write buffer
//! and page table, and the cleaning journal (§3.4: "The state of the
//! cleaning process is kept in persistent memory so the controller can
//! recover quickly after a failure"). The only volatile state is the MMU
//! mapping cache.

use crate::engine::Engine;
use crate::error::EnvyError;
use crate::timing::BgOp;

/// Persistent record of an in-progress clean (victim, destination and
/// position); copied pages are recoverable from the page table itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleanJournal {
    /// The position being cleaned.
    pub pos: u32,
    /// The physical victim segment.
    pub victim: u32,
    /// The physical destination (the spare at clean start).
    pub dest: u32,
}

/// What recovery found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A mid-clean journal was found and the clean was completed.
    pub resumed_clean: bool,
    /// Pages that survived in the battery-backed write buffer.
    pub buffered_pages: usize,
    /// Shadow pages still protected for an open transaction.
    pub shadow_pages: usize,
}

impl Engine {
    /// Simulate a power failure: volatile state (the MMU cache) is lost;
    /// Flash, the battery-backed buffer, page table and clean journal
    /// survive.
    pub fn power_failure(&mut self) {
        self.mmu.invalidate_all();
    }

    /// Recover after a power failure: rebuild volatile state, complete
    /// any interrupted clean from the journal, and verify consistency.
    ///
    /// # Errors
    ///
    /// [`EnvyError::CorruptState`] if the persistent structures are
    /// inconsistent (use [`Engine::check_invariants`] for details);
    /// cleaning errors while completing an interrupted clean.
    pub fn recover(&mut self, ops: &mut Vec<BgOp>) -> Result<RecoveryReport, EnvyError> {
        self.mmu.invalidate_all();
        let resumed_clean = if let Some(journal) = self.journal {
            self.finish_clean(journal, ops)?;
            true
        } else {
            false
        };
        self.check_invariants()
            .map_err(|_| EnvyError::CorruptState)?;
        Ok(RecoveryReport {
            resumed_clean,
            buffered_pages: self.buffer.len(),
            shadow_pages: self.shadows.len(),
        })
    }

    /// Complete an interrupted clean: pages already copied were remapped
    /// before the crash, so the page table's remaining residents of the
    /// victim are exactly the uncopied pages.
    fn finish_clean(
        &mut self,
        journal: CleanJournal,
        ops: &mut Vec<BgOp>,
    ) -> Result<(), EnvyError> {
        let CleanJournal { pos, victim, dest } = journal;
        for (page, lp) in self.page_table.residents_of(victim) {
            let to_page = self.write_cursor(dest);
            let t = self.copy_flash_page(
                crate::addr::FlashLocation {
                    segment: victim,
                    page,
                },
                crate::addr::FlashLocation {
                    segment: dest,
                    page: to_page,
                },
                lp,
            )?;
            self.stats.clean_programs.incr();
            ops.push(BgOp {
                bank: self.flash.bank_of(dest),
                kind: crate::timing::BgKind::CleanCopy,
                duration: t,
            });
        }
        self.complete_clean_tail(pos, victim, dest, ops)
    }

    /// Whether a clean is recorded as in progress (test support).
    pub fn clean_in_progress(&self) -> bool {
        self.journal.is_some()
    }
}
