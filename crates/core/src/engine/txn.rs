//! Hardware atomic-transaction support (§6).
//!
//! "eNVy automatically copies all modified data from Flash to SRAM as part
//! of its copy-on-write mechanism. The original data in Flash is not
//! destroyed, and it can be used to provide a free shadow copy. An
//! application can roll back a transaction simply by copying data back
//! from Flash."
//!
//! The controller keeps a slot table of up to
//! [`crate::EnvyConfig::txn_slots`] concurrently open transactions,
//! isolated by per-page *write sets*: the shadow directory (the
//! [`ShadowTable`], keyed by page and owner) plus the fresh-page map. A
//! write to a page inside another open transaction's write set is refused
//! with [`crate::EnvyError::TxnConflict`] — an abort decision for the
//! caller, never a silent join or a busy wait — and that rule applies to
//! plain non-transactional writes too. Shadows are protected across
//! cleaning and wear leveling (relocated, not lost); commit journals a
//! durable commit record and then forgets that transaction's shadows;
//! abort repoints the page table at them. After a power failure,
//! [`Engine::recover`] resolves every in-flight transaction independently
//! to all-or-nothing: each journaled commit record finishes its commit,
//! each open uncommitted transaction rolls back. The full lifecycle, the
//! per-crash-point debris catalog, and the wire-level rules live in
//! `docs/TRANSACTIONS.md`.
//!
//! The public entry points are the [`crate::EnvyStore`] wrappers:
//!
//! ```
//! use envy_core::{EnvyConfig, EnvyStore};
//!
//! let mut store = EnvyStore::new(EnvyConfig::small_test()).unwrap();
//! store.prefill().unwrap();
//! let before = store.stats().txn_commits.get();
//!
//! let txn = store.txn_begin().unwrap();
//! store.txn_write(txn, 0, &[7u8; 16]).unwrap(); // captures a shadow copy
//! store.txn_write(txn, 4096, &[9u8; 16]).unwrap();
//! store.txn_commit(txn).unwrap(); // both pages durable, atomically
//!
//! let mut buf = [0u8; 16];
//! store.read(0, &mut buf).unwrap();
//! assert_eq!(buf, [7u8; 16]);
//! assert_eq!(store.stats().txn_commits.get(), before + 1);
//! ```

use crate::addr::{FlashLocation, Location, LogicalPage};
use crate::engine::{Engine, InjectionPoint};
use crate::error::EnvyError;
use crate::timing::BgOp;
use std::collections::HashMap;

/// Directory of shadow copies for open transactions.
#[derive(Debug, Clone, Default)]
pub struct ShadowTable {
    entries: HashMap<LogicalPage, (FlashLocation, u64)>,
}

impl ShadowTable {
    /// Number of shadow pages currently protected.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no shadows are protected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record the pre-transaction location of `lp`, keeping only the
    /// first (oldest) shadow per page within a transaction. Returns
    /// whether a new shadow was pinned (`false` when the page already
    /// has one).
    pub(crate) fn insert_if_absent(
        &mut self,
        lp: LogicalPage,
        loc: FlashLocation,
        txn: u64,
    ) -> bool {
        let mut inserted = false;
        self.entries.entry(lp).or_insert_with(|| {
            inserted = true;
            (loc, txn)
        });
        inserted
    }

    /// The shadow pages located in `segment`, in page order.
    pub(crate) fn residents_of(&self, segment: u32) -> Vec<(u32, LogicalPage)> {
        let mut v: Vec<(u32, LogicalPage)> = self
            .entries
            .iter()
            .filter(|(_, (loc, _))| loc.segment == segment)
            .map(|(&lp, (loc, _))| (loc.page, lp))
            .collect();
        v.sort_unstable();
        v
    }

    /// Update a shadow's location after the cleaner moved it.
    pub(crate) fn relocate(&mut self, lp: LogicalPage, loc: FlashLocation) {
        if let Some((old, _)) = self.entries.get_mut(&lp) {
            *old = loc;
        }
    }

    /// The open transaction whose write set contains `lp`, if any.
    pub(crate) fn owner_of(&self, lp: LogicalPage) -> Option<u64> {
        self.entries.get(&lp).map(|&(_, txn)| txn)
    }

    /// Remove every shadow whose transaction is not in the `open` slot
    /// table — bookkeeping left behind when power failed between a
    /// commit point and the release. Returns how many were released.
    pub(crate) fn release_stale(&mut self, open: &[u64]) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|_, (_, txn)| open.contains(txn));
        (before - self.entries.len()) as u64
    }

    /// Drop all shadows belonging to `txn` in place (no allocation —
    /// this is the commit hot path). Returns how many were released.
    pub(crate) fn release_txn(&mut self, txn: u64) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|_, (_, t)| *t != txn);
        (before - self.entries.len()) as u64
    }

    /// Collect the shadows belonging to `txn` into `out` (cleared
    /// first), sorted by logical page so rollback order is
    /// deterministic. Entries are *not* removed — the rollback removes
    /// each one only once its page is restored, so a crash mid-rollback
    /// leaves the directory describing exactly the unrestored remainder.
    pub(crate) fn pages_of_into(&self, txn: u64, out: &mut Vec<(LogicalPage, FlashLocation)>) {
        out.clear();
        out.extend(
            self.entries
                .iter()
                .filter(|(_, (_, t))| *t == txn)
                .map(|(&lp, (loc, _))| (lp, *loc)),
        );
        out.sort_unstable_by_key(|&(lp, _)| lp);
    }

    /// Remove a single shadow entry (its page has been restored).
    pub(crate) fn remove(&mut self, lp: LogicalPage) {
        self.entries.remove(&lp);
    }

    /// Verify every shadow references an invalid Flash page (the state
    /// the copy-on-write left it in).
    pub(crate) fn check(&self, flash: &envy_flash::FlashArray) -> Result<(), String> {
        for (&lp, (loc, _)) in &self.entries {
            if flash.page_state(loc.segment, loc.page) != envy_flash::PageState::Invalid {
                return Err(format!(
                    "shadow for logical page {lp} at ({}, {}) is not invalid",
                    loc.segment, loc.page
                ));
            }
        }
        Ok(())
    }
}

impl Engine {
    /// Open a transaction. The write buffer is drained first so every
    /// logical page is Flash-resident and the copy-on-write of each
    /// subsequent write yields a durable shadow copy.
    ///
    /// Up to [`crate::EnvyConfig::txn_slots`] transactions may be open at
    /// once (the paper's hardware mechanism is a single controller
    /// facility; the slot table is the §6 extension), isolated by
    /// per-page write sets.
    ///
    /// # Errors
    ///
    /// [`EnvyError::TxnSlotsFull`] if every slot is occupied; cleaning
    /// errors from the drain; [`EnvyError::PowerLoss`] at an armed
    /// injection point.
    pub fn txn_begin(&mut self, ops: &mut Vec<BgOp>) -> Result<u64, EnvyError> {
        if self.open_txns.len() >= self.config.txn_slots as usize {
            return Err(EnvyError::TxnSlotsFull {
                slots: self.config.txn_slots,
            });
        }
        self.flush_all(ops)?;
        self.crash_point(InjectionPoint::BeginAfterDrain)?;
        let id = self.next_txn_id;
        self.next_txn_id += self.txn_id_stride;
        self.open_txns.push(id);
        self.stats.open_txns.add(1);
        self.crash_point(InjectionPoint::BeginAfterOpen)?;
        Ok(id)
    }

    /// Partition the transaction-id space for multi-controller
    /// deployments: the next transaction gets id `first` and each
    /// subsequent one advances by `stride`. Giving every controller a
    /// distinct residue (`first = index + 1`, `stride = controllers`)
    /// makes ids globally unique across controllers, so an id presented
    /// to the wrong controller can never match its open transaction —
    /// it is refused with [`EnvyError::NoSuchTxn`] instead of silently
    /// joining a foreign transaction.
    ///
    /// Ids only identify a transaction while it is open; re-seeding may
    /// reuse ids of already-resolved transactions, which is harmless.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is open, if `stride` is zero, or if
    /// `first` is zero (id 0 is reserved as "never a transaction").
    pub fn seed_txn_ids(&mut self, first: u64, stride: u64) {
        assert!(
            self.open_txns.is_empty(),
            "cannot re-seed transaction ids while a transaction is open"
        );
        assert!(stride > 0, "transaction id stride must be nonzero");
        assert!(first > 0, "transaction ids start at 1");
        self.next_txn_id = first;
        self.txn_id_stride = stride;
    }

    /// Commit: make the transaction durable, then release its shadow
    /// pages (they become ordinary invalid data for the cleaner to
    /// reclaim).
    ///
    /// The atomic commit point is writing the commit record into the
    /// persistent transaction journal (battery-backed SRAM, the same
    /// replay machinery as §3.4 cleaning). A power failure before it
    /// leaves the transaction open — [`Engine::recover`] rolls it back;
    /// one after it leaves a durable commit record — recovery finishes
    /// the release and the transaction stays committed. Either way the
    /// multi-page write set is all-or-nothing.
    ///
    /// # Errors
    ///
    /// [`EnvyError::NoSuchTxn`] if `txn` is not an open transaction;
    /// [`EnvyError::PowerLoss`] at an armed injection point.
    pub fn txn_commit(&mut self, txn: u64) -> Result<(), EnvyError> {
        if !self.open_txns.contains(&txn) {
            return Err(EnvyError::NoSuchTxn { txn });
        }
        self.crash_point(InjectionPoint::CommitBefore)?;
        // The durable commit point: once this record is journaled,
        // recovery completes this transaction's commit instead of
        // rolling it back — independently of any other open transaction.
        self.txn_journal.push(txn);
        self.crash_point(InjectionPoint::CommitAfterJournal)?;
        self.finish_commit(txn);
        self.crash_point(InjectionPoint::CommitAfterPoint)?;
        Ok(())
    }

    /// Release a journaled commit: drop the transaction's shadow
    /// directory entries in place, forget its fresh pages, free its
    /// slot, and clear its commit record. Other open transactions are
    /// untouched. Called from [`Engine::txn_commit`] and, after a crash
    /// that left the record behind, from [`Engine::recover`].
    pub(crate) fn finish_commit(&mut self, txn: u64) {
        self.shadows.release_txn(txn);
        self.txn_fresh.retain(|_, t| *t != txn);
        self.open_txns.retain(|&t| t != txn);
        self.txn_journal.retain(|&t| t != txn);
        self.stats.txn_commits.add(1);
    }

    /// Abort: restore every written page to its shadow copy by repointing
    /// the page table back at the original Flash data (§6 rollback).
    ///
    /// # Errors
    ///
    /// [`EnvyError::NoSuchTxn`] if `txn` is not an open transaction;
    /// [`EnvyError::PowerLoss`] at an armed injection point (the
    /// rollback then completes inside [`Engine::recover`]).
    pub fn txn_abort(&mut self, txn: u64) -> Result<(), EnvyError> {
        if !self.open_txns.contains(&txn) {
            return Err(EnvyError::NoSuchTxn { txn });
        }
        self.crash_point(InjectionPoint::AbortBefore)?;
        self.rollback_open(txn)
    }

    /// Roll the open transaction `txn` back page by page and close it.
    /// Shared by [`Engine::txn_abort`] and [`Engine::recover`] (an
    /// uncommitted transaction found open after a crash); idempotent
    /// under re-execution, so a crash at any point inside simply leaves
    /// the remainder for recovery. Only `txn`'s write set is touched —
    /// other open transactions keep their slots and shadows.
    pub(crate) fn rollback_open(&mut self, txn: u64) -> Result<(), EnvyError> {
        let mut scratch = std::mem::take(&mut self.txn_scratch);
        self.shadows.pages_of_into(txn, &mut scratch);
        let mut outcome = Ok(());
        for &(lp, shadow) in &scratch {
            if let Err(e) = self.rollback_page(lp, shadow) {
                outcome = Err(e);
                break;
            }
            // The page is restored; only now does its directory entry
            // go away, so a crash below leaves exactly the unrestored
            // remainder for recovery to finish.
            self.shadows.remove(lp);
            if let Err(e) = self.crash_point(InjectionPoint::AbortMidRollback) {
                outcome = Err(e);
                break;
            }
        }
        scratch.clear();
        self.txn_scratch = scratch;
        outcome?;
        // Pages born inside the transaction return to the unmapped state
        // (reads observe erased bytes again). Sorted so a mid-rollback
        // crash is deterministic under a replayed fault plan.
        let mut fresh: Vec<LogicalPage> = self
            .txn_fresh
            .iter()
            .filter(|&(_, t)| *t == txn)
            .map(|(&lp, _)| lp)
            .collect();
        fresh.sort_unstable();
        for lp in fresh {
            match self.page_table.lookup(lp) {
                Location::Sram => {
                    self.buffer.remove(lp);
                }
                Location::Flash(cur) => {
                    self.flash.invalidate_page(cur.segment, cur.page)?;
                }
                Location::Unmapped => {}
            }
            self.page_table.unmap(lp);
            self.mmu.invalidate(lp);
            self.txn_fresh.remove(&lp);
            self.crash_point(InjectionPoint::AbortMidRollback)?;
        }
        self.crash_point(InjectionPoint::AbortAfterRollback)?;
        self.open_txns.retain(|&t| t != txn);
        self.stats.txn_aborts.add(1);
        Ok(())
    }

    /// Restore one page to its pre-transaction shadow copy.
    fn rollback_page(&mut self, lp: LogicalPage, shadow: FlashLocation) -> Result<(), EnvyError> {
        match self.page_table.lookup(lp) {
            Location::Sram => {
                self.buffer.remove(lp);
            }
            Location::Flash(cur) => {
                // The dirty version was flushed during the
                // transaction; discard it.
                self.flash.invalidate_page(cur.segment, cur.page)?;
            }
            Location::Unmapped => unreachable!("shadowed page cannot be unmapped"),
        }
        self.flash.revalidate_page(shadow.segment, shadow.page)?;
        self.page_table.map_flash(lp, shadow);
        self.mmu.invalidate(lp);
        Ok(())
    }

    /// The currently open transactions, in begin order.
    pub fn open_txns(&self) -> &[u64] {
        &self.open_txns
    }

    /// The open transaction (if any) whose write set contains the page.
    pub fn txn_owner_of(&self, lp: LogicalPage) -> Option<u64> {
        self.shadows
            .owner_of(lp)
            .or_else(|| self.txn_fresh.get(&lp).copied())
    }

    /// The journaled-but-unreleased commit records, in commit order.
    /// Non-empty only in the window between a transaction's durable
    /// commit point and its shadow release — the state a crash at
    /// [`InjectionPoint::CommitAfterJournal`] leaves behind.
    pub fn commit_records(&self) -> &[u64] {
        &self.txn_journal
    }

    /// Number of protected shadow pages.
    pub fn shadow_pages(&self) -> usize {
        self.shadows.len()
    }
}
