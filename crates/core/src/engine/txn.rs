//! Hardware atomic-transaction support (§6).
//!
//! "eNVy automatically copies all modified data from Flash to SRAM as part
//! of its copy-on-write mechanism. The original data in Flash is not
//! destroyed, and it can be used to provide a free shadow copy. An
//! application can roll back a transaction simply by copying data back
//! from Flash."
//!
//! The controller keeps a directory of shadow copies per open transaction,
//! protects them across cleaning and wear leveling (they are relocated,
//! not lost), commits by forgetting them, and aborts by repointing the
//! page table at the shadows.

use crate::addr::{FlashLocation, Location, LogicalPage};
use crate::engine::{Engine, InjectionPoint};
use crate::error::EnvyError;
use crate::timing::BgOp;
use std::collections::HashMap;

/// Directory of shadow copies for open transactions.
#[derive(Debug, Clone, Default)]
pub struct ShadowTable {
    entries: HashMap<LogicalPage, (FlashLocation, u64)>,
}

impl ShadowTable {
    /// Number of shadow pages currently protected.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no shadows are protected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record the pre-transaction location of `lp`, keeping only the
    /// first (oldest) shadow per page within a transaction.
    pub(crate) fn insert_if_absent(&mut self, lp: LogicalPage, loc: FlashLocation, txn: u64) {
        self.entries.entry(lp).or_insert((loc, txn));
    }

    /// The shadow pages located in `segment`, in page order.
    pub(crate) fn residents_of(&self, segment: u32) -> Vec<(u32, LogicalPage)> {
        let mut v: Vec<(u32, LogicalPage)> = self
            .entries
            .iter()
            .filter(|(_, (loc, _))| loc.segment == segment)
            .map(|(&lp, (loc, _))| (loc.page, lp))
            .collect();
        v.sort_unstable();
        v
    }

    /// Update a shadow's location after the cleaner moved it.
    pub(crate) fn relocate(&mut self, lp: LogicalPage, loc: FlashLocation) {
        if let Some((old, _)) = self.entries.get_mut(&lp) {
            *old = loc;
        }
    }

    /// Remove every shadow whose transaction is not the `active` one —
    /// bookkeeping left behind when power failed between a commit point
    /// and the release. Returns how many were released.
    pub(crate) fn release_stale(&mut self, active: Option<u64>) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|_, (_, txn)| Some(*txn) == active);
        (before - self.entries.len()) as u64
    }

    /// Remove and return all shadows belonging to `txn`.
    pub(crate) fn drop_txn(&mut self, txn: u64) -> Vec<(LogicalPage, FlashLocation)> {
        let mut removed: Vec<(LogicalPage, FlashLocation)> = self
            .entries
            .iter()
            .filter(|(_, (_, t))| *t == txn)
            .map(|(&lp, (loc, _))| (lp, *loc))
            .collect();
        removed.sort_unstable_by_key(|&(lp, _)| lp);
        for (lp, _) in &removed {
            self.entries.remove(lp);
        }
        removed
    }

    /// Verify every shadow references an invalid Flash page (the state
    /// the copy-on-write left it in).
    pub(crate) fn check(&self, flash: &envy_flash::FlashArray) -> Result<(), String> {
        for (&lp, (loc, _)) in &self.entries {
            if flash.page_state(loc.segment, loc.page) != envy_flash::PageState::Invalid {
                return Err(format!(
                    "shadow for logical page {lp} at ({}, {}) is not invalid",
                    loc.segment, loc.page
                ));
            }
        }
        Ok(())
    }
}

impl Engine {
    /// Open a transaction. The write buffer is drained first so every
    /// logical page is Flash-resident and the copy-on-write of each
    /// subsequent write yields a durable shadow copy.
    ///
    /// Only one transaction may be open at a time (the paper's hardware
    /// mechanism is a single controller facility).
    ///
    /// # Errors
    ///
    /// [`EnvyError::TxnAlreadyOpen`] if a transaction is open; cleaning
    /// errors from the drain.
    pub fn txn_begin(&mut self, ops: &mut Vec<BgOp>) -> Result<u64, EnvyError> {
        if let Some(txn) = self.active_txn {
            return Err(EnvyError::TxnAlreadyOpen { txn });
        }
        self.flush_all(ops)?;
        let id = self.next_txn_id;
        self.next_txn_id += 1;
        self.active_txn = Some(id);
        Ok(id)
    }

    /// Commit: release the shadow pages (they become ordinary invalid
    /// data for the cleaner to reclaim).
    ///
    /// The atomic commit point is clearing the transaction id in
    /// battery-backed SRAM. A power failure before it leaves the
    /// transaction open (the unacknowledged commit never happened); one
    /// after it leaves a committed transaction whose stale shadow
    /// bookkeeping [`Engine::recover`] releases.
    ///
    /// # Errors
    ///
    /// [`EnvyError::NoSuchTxn`] if `txn` is not the open transaction;
    /// [`EnvyError::PowerLoss`] at an armed injection point.
    pub fn txn_commit(&mut self, txn: u64) -> Result<(), EnvyError> {
        if self.active_txn != Some(txn) {
            return Err(EnvyError::NoSuchTxn { txn });
        }
        self.crash_point(InjectionPoint::CommitBefore)?;
        self.active_txn = None;
        self.crash_point(InjectionPoint::CommitAfterPoint)?;
        self.shadows.drop_txn(txn);
        self.txn_fresh.clear();
        Ok(())
    }

    /// Abort: restore every written page to its shadow copy by repointing
    /// the page table back at the original Flash data (§6 rollback).
    ///
    /// # Errors
    ///
    /// [`EnvyError::NoSuchTxn`] if `txn` is not the open transaction.
    pub fn txn_abort(&mut self, txn: u64) -> Result<(), EnvyError> {
        if self.active_txn != Some(txn) {
            return Err(EnvyError::NoSuchTxn { txn });
        }
        for (lp, shadow) in self.shadows.drop_txn(txn) {
            match self.page_table.lookup(lp) {
                Location::Sram => {
                    self.buffer.remove(lp);
                }
                Location::Flash(cur) => {
                    // The dirty version was flushed during the
                    // transaction; discard it.
                    self.flash.invalidate_page(cur.segment, cur.page)?;
                }
                Location::Unmapped => unreachable!("shadowed page cannot be unmapped"),
            }
            self.flash.revalidate_page(shadow.segment, shadow.page)?;
            self.page_table.map_flash(lp, shadow);
            self.mmu.invalidate(lp);
        }
        // Pages born inside the transaction return to the unmapped state
        // (reads observe erased bytes again).
        let fresh: Vec<crate::addr::LogicalPage> = self.txn_fresh.drain().collect();
        for lp in fresh {
            match self.page_table.lookup(lp) {
                Location::Sram => {
                    self.buffer.remove(lp);
                }
                Location::Flash(cur) => {
                    self.flash.invalidate_page(cur.segment, cur.page)?;
                }
                Location::Unmapped => {}
            }
            self.page_table.unmap(lp);
            self.mmu.invalidate(lp);
        }
        self.active_txn = None;
        Ok(())
    }

    /// The currently open transaction, if any.
    pub fn active_txn(&self) -> Option<u64> {
        self.active_txn
    }

    /// Number of protected shadow pages.
    pub fn shadow_pages(&self) -> usize {
        self.shadows.len()
    }
}
