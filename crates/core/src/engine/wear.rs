//! Wear leveling (§4.3).
//!
//! "eNVy keeps statistics on the number of program/erase cycles each
//! segment has been exposed to and when the oldest segment gets over 100
//! cycles older than the youngest, a cleaning operation is initiated that
//! swaps the data in the two areas. This leads to an even wearing of the
//! segments."

use crate::engine::recovery::CleanJournal;
use crate::engine::{Engine, InjectionPoint};
use crate::error::EnvyError;
use crate::timing::{BgKind, BgOp};

impl Engine {
    /// Check the wear spread and swap the most- and least-worn segments'
    /// data if it exceeds the configured threshold. Called after every
    /// erase; re-entry during a swap is suppressed.
    pub(crate) fn maybe_wear_level(&mut self, ops: &mut Vec<BgOp>) -> Result<(), EnvyError> {
        if self.wear_in_progress || self.config.wear_threshold == u64::MAX {
            return Ok(());
        }
        let segments = self.config.geometry.segments();
        let (mut worn, mut young) = (0u32, 0u32);
        let (mut max_c, mut min_c) = (0u64, u64::MAX);
        for seg in 0..segments {
            let c = self.flash.erase_cycles(seg);
            if c > max_c {
                max_c = c;
                worn = seg;
            }
            if c < min_c {
                min_c = c;
                young = seg;
            }
        }
        if max_c - min_c <= self.config.wear_threshold {
            return Ok(());
        }
        // The most-worn segment may already be resting under cold data
        // from a previous swap; swapping it again would only add cycles.
        // It becomes eligible again once normal cleaning recycles it.
        if self.wear_parked == Some(worn) {
            return Ok(());
        }
        self.wear_in_progress = true;
        let result = self.wear_swap(worn, young, ops);
        self.wear_in_progress = false;
        result?;
        self.wear_parked = Some(worn);
        self.stats.wear_swaps.incr();
        self.trace
            .emit(crate::trace::TraceEvent::WearSwap { worn, young });
        Ok(())
    }

    /// Swap the data of the most-worn and least-worn segments so the worn
    /// one rests under cold data (or as the spare). The paper calls the
    /// swap "a cleaning operation", and it is built as one or two
    /// journaled [`Engine::wear_relocate`] steps so a power failure at
    /// any point is recovered by the same journal replay as a clean.
    fn wear_swap(&mut self, worn: u32, young: u32, ops: &mut Vec<BgOp>) -> Result<(), EnvyError> {
        if young == self.spare {
            // The least-worn segment is the (empty) spare: park the worn
            // segment's data there and let the worn segment rest as the
            // spare.
            self.wear_relocate(worn, young, ops)
        } else if worn == self.spare {
            // The most-worn segment is the spare: give it the youngest
            // segment's (cold, rarely cleaned) data so it stops cycling.
            self.wear_relocate(young, worn, ops)
        } else {
            // General case: rotate through the spare. The worn segment's
            // (hot) data moves to the spare; the young segment's (cold)
            // data moves onto the worn segment (the spare after the first
            // step); the young segment becomes the new spare and absorbs
            // future cycles. A crash between the two steps abandons the
            // second — the wear spread is still over threshold, so the
            // next erase re-triggers it.
            self.wear_relocate(worn, self.spare, ops)?;
            self.wear_relocate(young, worn, ops)
        }
    }

    /// One journaled wear relocation: move `victim`'s data (live and
    /// shadow pages) onto the erased spare `dest`, erase the victim and
    /// rotate it into the spare role. Structurally identical to the
    /// data-moving half of a clean, so the persistent [`CleanJournal`]
    /// covers it and [`Engine::recover`] completes it after a crash.
    fn wear_relocate(
        &mut self,
        victim: u32,
        dest: u32,
        ops: &mut Vec<BgOp>,
    ) -> Result<(), EnvyError> {
        debug_assert_eq!(dest, self.spare, "wear relocations fill the spare");
        let pos = self.pos_of[victim as usize];
        self.journal = Some(CleanJournal { pos, victim, dest });
        self.crash_point(InjectionPoint::WearAfterJournal)?;
        self.move_segment_data(victim, dest, ops)?;
        self.complete_clean_tail(pos, victim, dest, ops)
    }

    /// Copy every live page and shadow page of `from` into the (erased)
    /// segment `to`, preserving order.
    fn move_segment_data(
        &mut self,
        from: u32,
        to: u32,
        ops: &mut Vec<BgOp>,
    ) -> Result<(), EnvyError> {
        // Same batched shape as `clean_inner`: reuse the persistent scan
        // buffer and coalesce the per-page WearCopy stream; early exits
        // still flush the batch and hand the buffer back.
        let residents = {
            let mut buf = std::mem::take(&mut self.resident_scan);
            self.page_table.residents_into(from, &mut buf);
            buf
        };
        let mut batch = crate::timing::BgBatcher::new();
        let mut failure = None;
        for &(page, lp) in &residents {
            let t = match self.copy_flash_page(
                crate::addr::FlashLocation {
                    segment: from,
                    page,
                },
                to,
                lp,
                Some(InjectionPoint::WearDuringCopy),
            ) {
                Ok(t) => t,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            self.stats.wear_programs.incr();
            batch.add(self.flash.bank_of(to), BgKind::WearCopy, t, ops);
            if let Err(e) = self.crash_point(InjectionPoint::WearAfterCopy) {
                failure = Some(e);
                break;
            }
        }
        batch.finish(ops);
        self.resident_scan = residents;
        if let Some(e) = failure {
            return Err(e);
        }
        for (page, lp) in self.shadows.residents_of(from) {
            if self.flash.stores_data() {
                self.flash.read_page(from, page, Some(&mut self.scratch))?;
            } else {
                self.flash.read_page(from, page, None)?;
            }
            let (t, to_page) = self.program_scratch_retrying(to)?;
            self.flash.invalidate_page(to, to_page)?;
            self.shadows.relocate(
                lp,
                crate::addr::FlashLocation {
                    segment: to,
                    page: to_page,
                },
            );
            self.stats.wear_programs.incr();
            ops.push(BgOp::once(self.flash.bank_of(to), BgKind::WearCopy, t));
            self.crash_point(InjectionPoint::WearAfterCopy)?;
        }
        Ok(())
    }
}
