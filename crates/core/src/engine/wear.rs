//! Wear leveling (§4.3).
//!
//! "eNVy keeps statistics on the number of program/erase cycles each
//! segment has been exposed to and when the oldest segment gets over 100
//! cycles older than the youngest, a cleaning operation is initiated that
//! swaps the data in the two areas. This leads to an even wearing of the
//! segments."

use crate::engine::{Engine, POS_NONE};
use crate::error::EnvyError;
use crate::timing::{BgKind, BgOp};

impl Engine {
    /// Check the wear spread and swap the most- and least-worn segments'
    /// data if it exceeds the configured threshold. Called after every
    /// erase; re-entry during a swap is suppressed.
    pub(crate) fn maybe_wear_level(&mut self, ops: &mut Vec<BgOp>) -> Result<(), EnvyError> {
        if self.wear_in_progress || self.config.wear_threshold == u64::MAX {
            return Ok(());
        }
        let segments = self.config.geometry.segments();
        let (mut worn, mut young) = (0u32, 0u32);
        let (mut max_c, mut min_c) = (0u64, u64::MAX);
        for seg in 0..segments {
            let c = self.flash.erase_cycles(seg);
            if c > max_c {
                max_c = c;
                worn = seg;
            }
            if c < min_c {
                min_c = c;
                young = seg;
            }
        }
        if max_c - min_c <= self.config.wear_threshold {
            return Ok(());
        }
        // The most-worn segment may already be resting under cold data
        // from a previous swap; swapping it again would only add cycles.
        // It becomes eligible again once normal cleaning recycles it.
        if self.wear_parked == Some(worn) {
            return Ok(());
        }
        self.wear_in_progress = true;
        let result = self.wear_swap(worn, young, ops);
        self.wear_in_progress = false;
        result?;
        self.wear_parked = Some(worn);
        self.stats.wear_swaps.incr();
        Ok(())
    }

    /// Swap the data of the most-worn and least-worn segments so the worn
    /// one rests under cold data (or as the spare).
    fn wear_swap(&mut self, worn: u32, young: u32, ops: &mut Vec<BgOp>) -> Result<(), EnvyError> {
        if young == self.spare {
            // The least-worn segment is the (empty) spare: park the worn
            // segment's data there and let the worn segment rest as the
            // spare.
            let pos = self.pos_of[worn as usize];
            self.move_segment_data(worn, young, ops)?;
            self.erase_for_wear(worn, ops)?;
            self.order[pos as usize] = young;
            self.pos_of[young as usize] = pos;
            self.pos_of[worn as usize] = POS_NONE;
            self.spare = worn;
        } else if worn == self.spare {
            // The most-worn segment is the spare: give it the youngest
            // segment's (cold, rarely cleaned) data so it stops cycling.
            let pos = self.pos_of[young as usize];
            self.move_segment_data(young, worn, ops)?;
            self.erase_for_wear(young, ops)?;
            self.order[pos as usize] = worn;
            self.pos_of[worn as usize] = pos;
            self.pos_of[young as usize] = POS_NONE;
            self.spare = young;
        } else {
            // General case: rotate through the spare. The worn segment's
            // (hot) data moves to the spare; the young segment's (cold)
            // data moves onto the worn segment; the young segment becomes
            // the new spare and absorbs future cycles.
            let spare = self.spare;
            let pos_w = self.pos_of[worn as usize];
            let pos_y = self.pos_of[young as usize];
            self.move_segment_data(worn, spare, ops)?;
            self.erase_for_wear(worn, ops)?;
            self.order[pos_w as usize] = spare;
            self.pos_of[spare as usize] = pos_w;
            self.move_segment_data(young, worn, ops)?;
            self.erase_for_wear(young, ops)?;
            self.order[pos_y as usize] = worn;
            self.pos_of[worn as usize] = pos_y;
            self.pos_of[young as usize] = POS_NONE;
            self.spare = young;
        }
        Ok(())
    }

    /// Copy every live page and shadow page of `from` into the (erased)
    /// segment `to`, preserving order.
    fn move_segment_data(
        &mut self,
        from: u32,
        to: u32,
        ops: &mut Vec<BgOp>,
    ) -> Result<(), EnvyError> {
        for (page, lp) in self.page_table.residents_of(from) {
            let to_page = self.write_cursor(to);
            let t = self.copy_flash_page(
                crate::addr::FlashLocation {
                    segment: from,
                    page,
                },
                crate::addr::FlashLocation {
                    segment: to,
                    page: to_page,
                },
                lp,
            )?;
            self.stats.wear_programs.incr();
            ops.push(BgOp {
                bank: self.flash.bank_of(to),
                kind: BgKind::WearCopy,
                duration: t,
            });
        }
        for (page, lp) in self.shadows.residents_of(from) {
            let to_page = self.write_cursor(to);
            let data = if self.flash.stores_data() {
                self.flash.read_page(from, page, Some(&mut self.scratch))?;
                Some(&self.scratch[..])
            } else {
                self.flash.read_page(from, page, None)?;
                None
            };
            let t = self.flash.program_page(to, to_page, data)?;
            self.flash.invalidate_page(to, to_page)?;
            self.shadows.relocate(
                lp,
                crate::addr::FlashLocation {
                    segment: to,
                    page: to_page,
                },
            );
            self.stats.wear_programs.incr();
            ops.push(BgOp {
                bank: self.flash.bank_of(to),
                kind: BgKind::WearCopy,
                duration: t,
            });
        }
        Ok(())
    }

    fn erase_for_wear(&mut self, seg: u32, ops: &mut Vec<BgOp>) -> Result<(), EnvyError> {
        let t = self.flash.erase_segment(seg)?;
        self.stats.erases.incr();
        ops.push(BgOp {
            bank: self.flash.bank_of(seg),
            kind: BgKind::Erase,
            duration: t,
        });
        Ok(())
    }
}
