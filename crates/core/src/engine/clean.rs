//! The cleaning driver (§3.4, §4).
//!
//! Cleaning copies a segment's live data, in page order, to the erased
//! spare segment, then erases the victim, which becomes the new spare.
//! Under locality gathering, some pages are diverted ("shed") to
//! neighbouring partitions instead, re-apportioning free space. Shadow
//! pages owned by open transactions are relocated along with live data
//! (§6: the controller "has to keep track of the location of the shadow
//! copies and protect them from being cleaned").

use crate::addr::{FlashLocation, LogicalPage};
use crate::engine::policy::{LgPlan, ShedPlan};
use crate::engine::recovery::CleanJournal;
use crate::engine::{Engine, InjectionPoint, POS_NONE};
use crate::error::EnvyError;
use crate::timing::{BgBatcher, BgKind, BgOp};
use envy_flash::FlashError;
use envy_sim::time::Ns;

impl Engine {
    /// Clean the segment at `pos`: shed per the locality-gathering plan,
    /// copy remaining live data to the spare, erase, and swap the spare
    /// into the position. Exposed publicly for maintenance-style forced
    /// cleaning (e.g. draining invalid space before a planned shutdown).
    ///
    /// # Errors
    ///
    /// Propagates Flash errors (engine bugs) and [`EnvyError::ArrayFull`]
    /// from pathological utilization.
    pub fn clean_position(&mut self, pos: u32, ops: &mut Vec<BgOp>) -> Result<(), EnvyError> {
        let mut shed = match self.lg_plan(pos) {
            LgPlan::Shed(s) => s,
            LgPlan::None => ShedPlan::default(),
        };
        let victim = self.order[pos as usize];
        // A 100%-live victim cannot yield space by cleaning in place:
        // divert pages somewhere else or fail.
        if shed.total == 0
            && self.flash.valid_pages(victim) == self.config.geometry.pages_per_segment()
        {
            shed = self.forced_shed_plan(pos);
        }
        self.clean_inner(pos, shed, None, ops)
    }

    /// Test/recovery hook: run a clean but stop after `after_copies` page
    /// copies, leaving the persistent clean journal set, as if power
    /// failed mid-clean. [`Engine::recover`] completes it.
    ///
    /// # Errors
    ///
    /// As [`Engine::clean_position`].
    pub fn clean_interrupted(
        &mut self,
        pos: u32,
        after_copies: u32,
        ops: &mut Vec<BgOp>,
    ) -> Result<(), EnvyError> {
        self.clean_inner(pos, ShedPlan::default(), Some(after_copies), ops)
    }

    fn clean_inner(
        &mut self,
        pos: u32,
        plan: ShedPlan,
        interrupt_after: Option<u32>,
        ops: &mut Vec<BgOp>,
    ) -> Result<(), EnvyError> {
        assert!(
            interrupt_after.is_none() || plan.total == 0,
            "interrupted cleans do not support redistribution"
        );
        let victim = self.order[pos as usize];
        let dest = self.spare;
        debug_assert_eq!(
            self.flash.erased_pages(dest),
            self.config.geometry.pages_per_segment(),
            "spare must be fully erased"
        );
        // §3.4: "The state of the cleaning process is kept in persistent
        // memory so the controller can recover quickly after a failure."
        self.journal = Some(CleanJournal { pos, victim, dest });
        self.crash_point(InjectionPoint::CleanAfterJournal)?;

        // Reuse the engine's persistent scan buffer — at paper scale a
        // victim holds up to 65 536 residents, and a fresh Vec per clean
        // is measurable allocator traffic.
        let residents = {
            let mut buf = std::mem::take(&mut self.resident_scan);
            self.page_table.residents_into(victim, &mut buf);
            buf
        };
        let n = residents.len();
        self.trace.emit(crate::trace::TraceEvent::CleanStart {
            position: pos,
            victim,
            live_pages: n as u32,
        });
        let shed_n = (plan.total as usize).min(n);
        // §4.3: pages headed for a higher-numbered (colder) partition are
        // taken from the beginning (the cold end); pages headed lower are
        // taken from the end (the hot end).
        let shed_range = if plan.from_head {
            0..shed_n
        } else {
            n - shed_n..n
        };
        let mut shed_slots = plan
            .dests
            .iter()
            .flat_map(|&(pos, count)| std::iter::repeat_n(pos, count as usize));

        // Copies to one destination all cost the same program time, so
        // the op stream coalesces into one batch per destination run.
        // Early exits (injected crash, simulated interruption) must still
        // flush the batch and hand the scan buffer back, hence the
        // deferred-outcome shape instead of `?`/`return` in the loop.
        let mut batch = BgBatcher::new();
        let mut outcome: Result<bool, EnvyError> = Ok(false);
        let mut copied = 0u32;
        for (i, &(page, lp)) in residents.iter().enumerate() {
            let (to_seg, is_shed) = if shed_range.contains(&i) {
                let slot = shed_slots.next().expect("plan covers shed range");
                (self.order[slot as usize], true)
            } else {
                (dest, false)
            };
            let t = match self.copy_flash_page(
                FlashLocation {
                    segment: victim,
                    page,
                },
                to_seg,
                lp,
                Some(InjectionPoint::CleanDuringCopy),
            ) {
                Ok(t) => t,
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            };
            self.stats.clean_programs.incr();
            if is_shed {
                self.stats.shed_programs.incr();
                self.trace.emit(crate::trace::TraceEvent::Shed {
                    lp,
                    to_segment: to_seg,
                });
            }
            batch.add(self.flash.bank_of(to_seg), BgKind::CleanCopy, t, ops);
            if let Err(e) = self.crash_point(InjectionPoint::CleanAfterCopy) {
                outcome = Err(e);
                break;
            }
            copied += 1;
            if interrupt_after == Some(copied) {
                // Simulated mid-clean power failure: journal stays set.
                outcome = Ok(true);
                break;
            }
        }
        batch.finish(ops);
        self.resident_scan = residents;
        match outcome {
            Ok(false) => {}
            Ok(true) => return Ok(()),
            Err(e) => return Err(e),
        }
        self.complete_clean_tail(pos, victim, dest, ops)?;
        self.stats.cleans.incr();
        self.trace
            .emit(crate::trace::TraceEvent::CleanEnd { victim });
        Ok(())
    }

    /// Copy one live Flash page (read on the wide datapath, program the
    /// first erased page of `to_seg`, invalidate the source, atomically
    /// repoint the page table).
    ///
    /// Injected program faults are retried on the next erased page of
    /// the destination (see [`Engine::program_scratch_retrying`]). When
    /// `torn` names an armed injection point the program is cut
    /// mid-transfer and [`EnvyError::PowerLoss`] returned: the source
    /// stays valid and mapped, so recovery merely scavenges the torn
    /// destination page.
    pub(crate) fn copy_flash_page(
        &mut self,
        from: FlashLocation,
        to_seg: u32,
        lp: LogicalPage,
        torn: Option<InjectionPoint>,
    ) -> Result<Ns, EnvyError> {
        if self.flash.stores_data() {
            self.flash
                .read_page(from.segment, from.page, Some(&mut self.scratch))?;
        } else {
            self.flash.read_page(from.segment, from.page, None)?;
        }
        if let Some(point) = torn {
            if self.crash_armed(point) {
                let chips = self.torn_chips();
                let page = self.write_cursor(to_seg);
                let data = self.flash.stores_data().then_some(&self.scratch[..]);
                self.flash.program_page_torn(to_seg, page, data, chips)?;
                return Err(EnvyError::PowerLoss);
            }
        }
        let (t, to_page) = self.program_scratch_retrying(to_seg)?;
        self.flash.invalidate_page(from.segment, from.page)?;
        self.page_table.map_flash(
            lp,
            FlashLocation {
                segment: to_seg,
                page: to_page,
            },
        );
        self.mmu.invalidate(lp);
        Ok(t)
    }

    /// Program the scratch buffer (or a stateless page when payloads are
    /// not stored) into the first erased page of `seg`, retrying on the
    /// next erased page after an injected verify failure. Returns the
    /// program time and the page that finally took the data.
    ///
    /// # Errors
    ///
    /// [`EnvyError::ArrayFull`] if injected faults exhaust the segment's
    /// erased pages — copy destinations are sized for the fault-free
    /// case, so a cleaning destination can in principle overflow under
    /// heavy injected faults; callers surface the error.
    pub(crate) fn program_scratch_retrying(&mut self, seg: u32) -> Result<(Ns, u32), EnvyError> {
        loop {
            if !self.has_space(seg) {
                return Err(EnvyError::ArrayFull);
            }
            let page = self.write_cursor(seg);
            let data = self.flash.stores_data().then_some(&self.scratch[..]);
            match self.flash.program_page(seg, page, data) {
                Ok(t) => return Ok((t, page)),
                Err(FlashError::ProgramFailed { .. }) => {
                    self.stats.program_faults.incr();
                    self.stats.program_retries.incr();
                    self.trace
                        .emit(crate::trace::TraceEvent::ProgramFault { segment: seg });
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Erase a segment, reissuing the erase after an injected verify
    /// failure (a failed erase leaves every page indeterminate, which
    /// the array models as invalid — exactly the precondition for the
    /// retry). Only the successful pulse's time is returned.
    pub(crate) fn erase_retrying(&mut self, seg: u32) -> Result<Ns, EnvyError> {
        loop {
            match self.flash.erase_segment(seg) {
                Ok(t) => return Ok(t),
                Err(FlashError::EraseFailed { .. }) => {
                    self.stats.erase_faults.incr();
                    self.stats.erase_retries.incr();
                    self.trace
                        .emit(crate::trace::TraceEvent::EraseFault { segment: seg });
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Shared tail of a clean: relocate shadow pages, erase the victim,
    /// rotate the spare, and run the wear-leveling check. Also the tail
    /// of a journaled wear relocation and of journal replay, so every
    /// step is idempotent under re-execution after a crash (the
    /// `cleans` statistic is counted by the callers, not here, so wear
    /// relocations do not inflate it).
    pub(crate) fn complete_clean_tail(
        &mut self,
        pos: u32,
        victim: u32,
        dest: u32,
        ops: &mut Vec<BgOp>,
    ) -> Result<(), EnvyError> {
        // Relocate transaction shadow copies (§6). They are invalid pages
        // in the array but their contents must survive the erase.
        for (page, lp) in self.shadows.residents_of(victim) {
            if self.flash.stores_data() {
                self.flash
                    .read_page(victim, page, Some(&mut self.scratch))?;
            } else {
                self.flash.read_page(victim, page, None)?;
            }
            if self.crash_armed(InjectionPoint::CleanDuringShadowCopy) {
                // Torn shadow relocation: the original shadow survives in
                // the victim; the torn destination page becomes garbage
                // for recovery to scavenge.
                let chips = self.torn_chips();
                let to_page = self.write_cursor(dest);
                let data = self.flash.stores_data().then_some(&self.scratch[..]);
                self.flash.program_page_torn(dest, to_page, data, chips)?;
                return Err(EnvyError::PowerLoss);
            }
            let (t, to_page) = self.program_scratch_retrying(dest)?;
            // The shadow is not live data: return it to the invalid state
            // and update the shadow directory.
            self.flash.invalidate_page(dest, to_page)?;
            self.shadows.relocate(
                lp,
                FlashLocation {
                    segment: dest,
                    page: to_page,
                },
            );
            self.stats.clean_programs.incr();
            self.stats.shadow_programs.incr();
            ops.push(BgOp::once(self.flash.bank_of(dest), BgKind::CleanCopy, t));
        }
        self.crash_point(InjectionPoint::CleanBeforeErase)?;

        if self.wear_parked == Some(victim) {
            self.wear_parked = None;
        }
        if self.crash_armed(InjectionPoint::CleanDuringErase) {
            // Torn erase: every page of the victim left indeterminate;
            // recovery's journal replay reissues the erase.
            self.flash.erase_segment_torn(victim)?;
            return Err(EnvyError::PowerLoss);
        }
        let t = self.erase_retrying(victim)?;
        self.trace.emit(crate::trace::TraceEvent::Erase {
            segment: victim,
            cycles: self.flash.erase_cycles(victim),
        });
        ops.push(BgOp::once(self.flash.bank_of(victim), BgKind::Erase, t));
        self.crash_point(InjectionPoint::CleanAfterErase)?;
        self.order[pos as usize] = dest;
        self.pos_of[dest as usize] = pos;
        self.pos_of[victim as usize] = POS_NONE;
        self.spare = victim;
        self.stats.erases.incr();
        self.crash_point(InjectionPoint::CleanAfterRotate)?;
        self.journal = None;
        self.maybe_wear_level(ops)
    }
}
