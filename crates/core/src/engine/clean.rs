//! The cleaning driver (§3.4, §4).
//!
//! Cleaning copies a segment's live data, in page order, to the erased
//! spare segment, then erases the victim, which becomes the new spare.
//! Under locality gathering, some pages are diverted ("shed") to
//! neighbouring partitions instead, re-apportioning free space. Shadow
//! pages owned by open transactions are relocated along with live data
//! (§6: the controller "has to keep track of the location of the shadow
//! copies and protect them from being cleaned").

use crate::addr::{FlashLocation, LogicalPage};
use crate::engine::policy::{LgPlan, ShedPlan};
use crate::engine::recovery::CleanJournal;
use crate::engine::{Engine, POS_NONE};
use crate::error::EnvyError;
use crate::timing::{BgKind, BgOp};

impl Engine {
    /// Clean the segment at `pos`: shed per the locality-gathering plan,
    /// copy remaining live data to the spare, erase, and swap the spare
    /// into the position. Exposed publicly for maintenance-style forced
    /// cleaning (e.g. draining invalid space before a planned shutdown).
    ///
    /// # Errors
    ///
    /// Propagates Flash errors (engine bugs) and [`EnvyError::ArrayFull`]
    /// from pathological utilization.
    pub fn clean_position(&mut self, pos: u32, ops: &mut Vec<BgOp>) -> Result<(), EnvyError> {
        let mut shed = match self.lg_plan(pos) {
            LgPlan::Shed(s) => s,
            LgPlan::None => ShedPlan::default(),
        };
        let victim = self.order[pos as usize];
        // A 100%-live victim cannot yield space by cleaning in place:
        // divert pages somewhere else or fail.
        if shed.total == 0
            && self.flash.valid_pages(victim) == self.config.geometry.pages_per_segment()
        {
            shed = self.forced_shed_plan(pos);
        }
        self.clean_inner(pos, shed, None, ops)
    }

    /// Test/recovery hook: run a clean but stop after `after_copies` page
    /// copies, leaving the persistent clean journal set, as if power
    /// failed mid-clean. [`Engine::recover`] completes it.
    ///
    /// # Errors
    ///
    /// As [`Engine::clean_position`].
    pub fn clean_interrupted(
        &mut self,
        pos: u32,
        after_copies: u32,
        ops: &mut Vec<BgOp>,
    ) -> Result<(), EnvyError> {
        self.clean_inner(pos, ShedPlan::default(), Some(after_copies), ops)
    }

    fn clean_inner(
        &mut self,
        pos: u32,
        plan: ShedPlan,
        interrupt_after: Option<u32>,
        ops: &mut Vec<BgOp>,
    ) -> Result<(), EnvyError> {
        assert!(
            interrupt_after.is_none() || plan.total == 0,
            "interrupted cleans do not support redistribution"
        );
        let victim = self.order[pos as usize];
        let dest = self.spare;
        debug_assert_eq!(
            self.flash.erased_pages(dest),
            self.config.geometry.pages_per_segment(),
            "spare must be fully erased"
        );
        // §3.4: "The state of the cleaning process is kept in persistent
        // memory so the controller can recover quickly after a failure."
        self.journal = Some(CleanJournal { pos, victim, dest });

        let residents = self.page_table.residents_of(victim);
        let n = residents.len();
        let shed_n = (plan.total as usize).min(n);
        // §4.3: pages headed for a higher-numbered (colder) partition are
        // taken from the beginning (the cold end); pages headed lower are
        // taken from the end (the hot end).
        let shed_range = if plan.from_head {
            0..shed_n
        } else {
            n - shed_n..n
        };
        let mut shed_slots = plan
            .dests
            .iter()
            .flat_map(|&(pos, count)| std::iter::repeat_n(pos, count as usize));

        let mut copied = 0u32;
        for (i, &(page, lp)) in residents.iter().enumerate() {
            let (to_seg, is_shed) = if shed_range.contains(&i) {
                let slot = shed_slots.next().expect("plan covers shed range");
                (self.order[slot as usize], true)
            } else {
                (dest, false)
            };
            let to_page = self.write_cursor(to_seg);
            let t = self.copy_flash_page(
                FlashLocation {
                    segment: victim,
                    page,
                },
                FlashLocation {
                    segment: to_seg,
                    page: to_page,
                },
                lp,
            )?;
            self.stats.clean_programs.incr();
            if is_shed {
                self.stats.shed_programs.incr();
            }
            ops.push(BgOp {
                bank: self.flash.bank_of(to_seg),
                kind: BgKind::CleanCopy,
                duration: t,
            });
            copied += 1;
            if interrupt_after == Some(copied) {
                // Simulated mid-clean power failure: journal stays set.
                return Ok(());
            }
        }
        self.complete_clean_tail(pos, victim, dest, ops)
    }

    /// Copy one live Flash page (read on the wide datapath, program the
    /// destination, invalidate the source, atomically repoint the page
    /// table).
    pub(crate) fn copy_flash_page(
        &mut self,
        from: FlashLocation,
        to: FlashLocation,
        lp: LogicalPage,
    ) -> Result<envy_sim::time::Ns, EnvyError> {
        let data = if self.flash.stores_data() {
            self.flash
                .read_page(from.segment, from.page, Some(&mut self.scratch))?;
            Some(&self.scratch[..])
        } else {
            self.flash.read_page(from.segment, from.page, None)?;
            None
        };
        let t = self.flash.program_page(to.segment, to.page, data)?;
        self.flash.invalidate_page(from.segment, from.page)?;
        self.page_table.map_flash(lp, to);
        self.mmu.invalidate(lp);
        Ok(t)
    }

    /// Shared tail of a clean: relocate shadow pages, erase the victim,
    /// rotate the spare, and run the wear-leveling check.
    pub(crate) fn complete_clean_tail(
        &mut self,
        pos: u32,
        victim: u32,
        dest: u32,
        ops: &mut Vec<BgOp>,
    ) -> Result<(), EnvyError> {
        // Relocate transaction shadow copies (§6). They are invalid pages
        // in the array but their contents must survive the erase.
        for (page, lp) in self.shadows.residents_of(victim) {
            let to_page = self.write_cursor(dest);
            let data = if self.flash.stores_data() {
                self.flash
                    .read_page(victim, page, Some(&mut self.scratch))?;
                Some(&self.scratch[..])
            } else {
                self.flash.read_page(victim, page, None)?;
                None
            };
            let t = self.flash.program_page(dest, to_page, data)?;
            // The shadow is not live data: return it to the invalid state
            // and update the shadow directory.
            self.flash.invalidate_page(dest, to_page)?;
            self.shadows.relocate(
                lp,
                FlashLocation {
                    segment: dest,
                    page: to_page,
                },
            );
            self.stats.clean_programs.incr();
            self.stats.shadow_programs.incr();
            ops.push(BgOp {
                bank: self.flash.bank_of(dest),
                kind: BgKind::CleanCopy,
                duration: t,
            });
        }

        if self.wear_parked == Some(victim) {
            self.wear_parked = None;
        }
        let t = self.flash.erase_segment(victim)?;
        ops.push(BgOp {
            bank: self.flash.bank_of(victim),
            kind: BgKind::Erase,
            duration: t,
        });
        self.order[pos as usize] = dest;
        self.pos_of[dest as usize] = pos;
        self.pos_of[victim as usize] = POS_NONE;
        self.spare = victim;
        self.stats.cleans.incr();
        self.stats.erases.incr();
        self.journal = None;
        self.maybe_wear_level(ops)
    }
}
