//! Engine-level behavioural tests: copy-on-write, flushing, cleaning
//! policies, wear leveling, transactions and recovery.

use super::*;
use crate::addr::Location;
use crate::config::{EnvyConfig, PolicyKind};
use crate::engine::host::WriteKind;
use crate::timing::BgOp;
use envy_sim::dist::Bimodal;
use envy_sim::rng::Rng;

fn small(policy: PolicyKind) -> Engine {
    let mut e = Engine::new(EnvyConfig::small_test().with_policy(policy)).unwrap();
    e.prefill().unwrap();
    e
}

fn write_lp(e: &mut Engine, lp: u64, byte: u8) -> WriteKind {
    let mut ops: Vec<BgOp> = Vec::new();
    let r = e.write_page_bytes(lp, 0, &[byte], None, &mut ops).unwrap();
    r.kind
}

fn txn_write_lp(e: &mut Engine, txn: u64, lp: u64, byte: u8) -> WriteKind {
    let mut ops: Vec<BgOp> = Vec::new();
    let r = e
        .write_page_bytes(lp, 0, &[byte], Some(txn), &mut ops)
        .unwrap();
    r.kind
}

fn read_byte(e: &mut Engine, lp: u64) -> u8 {
    let mut b = [0u8];
    e.read_page_bytes(lp, 0, &mut b).unwrap();
    b[0]
}

#[test]
fn prefill_maps_every_logical_page() {
    let e = small(PolicyKind::paper_default());
    for lp in 0..e.config().logical_pages {
        assert!(matches!(e.page_table.lookup(lp), Location::Flash(_)));
    }
    e.check_invariants().unwrap();
}

#[test]
fn prefill_spreads_evenly() {
    let e = small(PolicyKind::paper_default());
    let per: Vec<u32> = e.order.iter().map(|&s| e.flash.valid_pages(s)).collect();
    let max = per.iter().max().unwrap();
    let min = per.iter().min().unwrap();
    assert!(
        max - min <= per[0].div_ceil(1).min(64),
        "uneven fill: {per:?}"
    );
    // Spare untouched.
    assert_eq!(e.flash.valid_pages(e.spare), 0);
}

#[test]
fn fresh_write_then_read() {
    let mut e = Engine::new(EnvyConfig::small_test()).unwrap();
    assert_eq!(write_lp(&mut e, 5, 0xAB), WriteKind::Fresh);
    assert_eq!(read_byte(&mut e, 5), 0xAB);
    assert_eq!(e.stats().fresh_allocs.get(), 1);
    e.check_invariants().unwrap();
}

#[test]
fn unwritten_pages_read_erased() {
    let mut e = Engine::new(EnvyConfig::small_test()).unwrap();
    assert_eq!(read_byte(&mut e, 0), 0xFF);
}

#[test]
fn cow_invalidates_flash_copy_and_remaps() {
    let mut e = small(PolicyKind::paper_default());
    let lp = 7;
    let Location::Flash(loc) = e.page_table.lookup(lp) else {
        panic!("prefilled page must be in flash");
    };
    assert!(matches!(
        write_lp(&mut e, lp, 0x11),
        WriteKind::CopyOnWrite { .. }
    ));
    assert_eq!(e.page_table.lookup(lp), Location::Sram);
    assert_eq!(
        e.flash.page_state(loc.segment, loc.page),
        envy_flash::PageState::Invalid
    );
    assert_eq!(read_byte(&mut e, lp), 0x11);
    assert_eq!(e.stats().cow_ops.get(), 1);
    e.check_invariants().unwrap();
}

#[test]
fn repeated_writes_absorbed_in_sram() {
    let mut e = small(PolicyKind::paper_default());
    write_lp(&mut e, 3, 1);
    assert_eq!(write_lp(&mut e, 3, 2), WriteKind::SramHit);
    assert_eq!(write_lp(&mut e, 3, 3), WriteKind::SramHit);
    assert_eq!(e.stats().cow_ops.get(), 1);
    assert_eq!(e.stats().sram_write_hits.get(), 2);
    assert_eq!(read_byte(&mut e, 3), 3);
}

#[test]
fn cow_preserves_rest_of_page() {
    let mut e = small(PolicyKind::paper_default());
    let mut ops = Vec::new();
    // Prefilled pages hold 0xFF everywhere; write one byte mid-page.
    e.write_page_bytes(9, 100, &[0x42], None, &mut ops).unwrap();
    let mut buf = [0u8; 3];
    e.read_page_bytes(9, 99, &mut buf).unwrap();
    assert_eq!(buf, [0xFF, 0x42, 0xFF]);
}

#[test]
fn flush_threshold_is_respected() {
    let mut e = small(PolicyKind::paper_default());
    let threshold = e.config().flush_threshold;
    for lp in 0..(threshold as u64 + 20) {
        write_lp(&mut e, lp, 1);
    }
    assert!(e.buffer.len() <= threshold);
    assert!(e.stats().pages_flushed.get() >= 20);
    e.check_invariants().unwrap();
}

#[test]
fn flushed_page_readable_from_flash() {
    let mut e = small(PolicyKind::paper_default());
    write_lp(&mut e, 2, 0x77);
    let mut ops = Vec::new();
    e.flush_all(&mut ops).unwrap();
    assert!(matches!(e.page_table.lookup(2), Location::Flash(_)));
    assert_eq!(read_byte(&mut e, 2), 0x77);
    e.check_invariants().unwrap();
}

#[test]
fn flush_records_bg_ops() {
    let mut e = small(PolicyKind::paper_default());
    write_lp(&mut e, 2, 1);
    let mut ops = Vec::new();
    e.flush_all(&mut ops).unwrap();
    assert!(ops.iter().any(|op| op.kind == crate::timing::BgKind::Flush));
}

fn churn(e: &mut Engine, writes: u64, seed: u64) {
    let mut rng = Rng::seed_from(seed);
    let n = e.config().logical_pages;
    for _ in 0..writes {
        let lp = rng.below(n);
        write_lp(e, lp, rng.next_u64() as u8);
    }
}

#[test]
fn greedy_survives_heavy_churn() {
    let mut e = small(PolicyKind::Greedy);
    churn(&mut e, 20_000, 1);
    assert!(e.stats().cleans.get() > 0, "cleaning must have happened");
    assert!(e.stats().cleaning_cost() > 0.0);
    e.check_invariants().unwrap();
}

#[test]
fn fifo_survives_heavy_churn() {
    let mut e = small(PolicyKind::Fifo);
    churn(&mut e, 20_000, 2);
    assert!(e.stats().cleans.get() > 0);
    e.check_invariants().unwrap();
}

#[test]
fn locality_gathering_survives_heavy_churn() {
    let mut e = small(PolicyKind::LocalityGathering);
    churn(&mut e, 20_000, 3);
    assert!(e.stats().cleans.get() > 0);
    e.check_invariants().unwrap();
}

#[test]
fn hybrid_survives_heavy_churn() {
    let mut e = small(PolicyKind::Hybrid {
        segments_per_partition: 4,
    });
    churn(&mut e, 20_000, 4);
    assert!(e.stats().cleans.get() > 0);
    e.check_invariants().unwrap();
}

#[test]
fn cost_benefit_survives_heavy_churn() {
    let mut e = small(PolicyKind::CostBenefit);
    churn(&mut e, 20_000, 5);
    assert!(e.stats().cleans.get() > 0);
    e.check_invariants().unwrap();
}

#[test]
fn cost_benefit_prefers_old_sparse_segments() {
    // Two candidate victims with equal invalid counts: cost-benefit picks
    // the one whose data has been stable longer (higher age).
    let mut e = small(PolicyKind::CostBenefit);
    // Rewrite a few pages of positions 2 and 5 to create invalid space.
    let per = e.config().logical_pages / e.positions() as u64;
    for i in 0..8 {
        write_lp(&mut e, 2 * per + i, 1);
        write_lp(&mut e, 5 * per + i, 1);
    }
    let mut ops = Vec::new();
    e.flush_all(&mut ops).unwrap();
    // Heavy churn makes cleaning happen under the policy; consistency is
    // the contract (victim order is policy-internal).
    churn(&mut e, 10_000, 6);
    assert!(e.stats().cleans.get() > 0);
    e.check_invariants().unwrap();
}

#[test]
fn data_integrity_under_churn_all_policies() {
    for policy in [
        PolicyKind::Greedy,
        PolicyKind::CostBenefit,
        PolicyKind::Fifo,
        PolicyKind::LocalityGathering,
        PolicyKind::Hybrid {
            segments_per_partition: 4,
        },
    ] {
        let mut e = small(policy);
        let n = e.config().logical_pages;
        let mut mirror = vec![0xFFu8; n as usize];
        let mut rng = Rng::seed_from(42);
        for _ in 0..10_000 {
            let lp = rng.below(n);
            let v = rng.next_u64() as u8;
            write_lp(&mut e, lp, v);
            mirror[lp as usize] = v;
        }
        for lp in 0..n {
            assert_eq!(
                read_byte(&mut e, lp),
                mirror[lp as usize],
                "mismatch at page {lp} under {policy:?}"
            );
        }
        e.check_invariants().unwrap();
    }
}

#[test]
fn greedy_picks_most_invalid_segment() {
    let mut e = small(PolicyKind::Greedy);
    // Invalidate many pages of position 3's segment by rewriting its
    // residents, few of position 1's.
    let per = e.config().logical_pages / e.positions() as u64;
    for i in 0..per / 2 {
        write_lp(&mut e, 3 * per + i, 1); // heavy on position 3
    }
    write_lp(&mut e, per, 1); // light on position 1
    let mut ops = Vec::new();
    e.flush_all(&mut ops).unwrap();
    // Fill the greedy active segment until a clean is forced and verify
    // the most-invalid segment was chosen: its invalid count drops to 0.
    let victim_phys = e.order[3];
    let invalid_before = e.flash.invalid_pages(victim_phys);
    assert!(invalid_before > 0);
    churn(&mut e, 5_000, 9);
    // After churn with cleaning, consistency holds and cleans occurred.
    assert!(e.stats().cleans.get() > 0);
    e.check_invariants().unwrap();
}

#[test]
fn cleaning_cost_uniform_is_reasonable() {
    // At 50% utilization with uniform traffic, steady-state cleaning cost
    // should be far below the naive u/(1-u) = 1.0 (FIFO ordering lets
    // segments decay before being cleaned).
    let mut e = small(PolicyKind::Fifo);
    churn(&mut e, 30_000, 7);
    let cost = e.stats().cleaning_cost();
    assert!(cost > 0.0 && cost < 1.5, "uniform FIFO cost {cost}");
}

#[test]
fn locality_gathering_lowers_hot_partition_utilization() {
    // 90% of writes to 10% of pages: the hot partition should end up with
    // more free space than cold partitions.
    let config = EnvyConfig::scaled(4, 16, 64, 256)
        .with_policy(PolicyKind::LocalityGathering)
        .with_utilization(0.8);
    let mut e = Engine::new(config).unwrap();
    e.prefill().unwrap();
    let n = e.config().logical_pages;
    let dist = Bimodal::from_spec(n, 10, 90);
    let mut rng = Rng::seed_from(5);
    for _ in 0..60_000 {
        let lp = dist.sample(&mut rng);
        write_lp(&mut e, lp, 1);
    }
    // Hot logical pages (first 10%) were prefilled into the first
    // positions. Compare utilization of position 0 vs the last position.
    let hot_u = e.flash.utilization(e.order[0]);
    let cold_u = e.flash.utilization(*e.order.last().unwrap());
    assert!(
        hot_u < cold_u,
        "hot segment utilization {hot_u:.2} should be below cold {cold_u:.2}"
    );
    assert!(e.stats().shed_programs.get() > 0, "redistribution must run");
    e.check_invariants().unwrap();
}

#[test]
fn wear_leveling_bounds_cycle_spread() {
    let config = EnvyConfig::scaled(2, 8, 32, 256)
        .with_policy(PolicyKind::LocalityGathering)
        .with_utilization(0.7)
        .with_buffer_pages(8)
        .with_wear_threshold(5);
    let mut e = Engine::new(config).unwrap();
    e.prefill().unwrap();
    // Hammer a hot region larger than the write buffer so flushes (and
    // therefore cleans) concentrate on a few segments.
    let mut rng = Rng::seed_from(11);
    for _ in 0..40_000 {
        let lp = rng.below(64);
        write_lp(&mut e, lp, 1);
    }
    assert!(e.stats().cleans.get() > 0, "cleaning must happen");
    assert!(e.stats().wear_swaps.get() > 0, "wear leveling must trigger");
    // Without wear leveling the hot segments would accumulate thousands
    // of cycles while cold segments stay at ~0; swapping keeps the spread
    // within a small multiple of the threshold.
    let spread = e.flash.max_erase_cycles() - e.flash.min_erase_cycles();
    let total = e.stats().erases.get();
    assert!(
        (spread as f64) < (total as f64) * 0.1,
        "cycle spread {spread} too large for {total} erases"
    );
    e.check_invariants().unwrap();
}

#[test]
fn wear_leveling_disabled_with_max_threshold() {
    let config = EnvyConfig::scaled(2, 8, 32, 256)
        .with_utilization(0.7)
        .with_wear_threshold(u64::MAX);
    let mut e = Engine::new(config).unwrap();
    e.prefill().unwrap();
    let mut rng = Rng::seed_from(12);
    for _ in 0..20_000 {
        write_lp(&mut e, rng.below(16), 1);
    }
    assert_eq!(e.stats().wear_swaps.get(), 0);
}

#[test]
fn txn_commit_keeps_changes() {
    let mut e = small(PolicyKind::paper_default());
    write_lp(&mut e, 1, 0x10);
    let mut ops = Vec::new();
    let txn = e.txn_begin(&mut ops).unwrap();
    txn_write_lp(&mut e, txn, 1, 0x20);
    e.txn_commit(txn).unwrap();
    assert_eq!(read_byte(&mut e, 1), 0x20);
    assert_eq!(e.shadow_pages(), 0);
    e.check_invariants().unwrap();
}

#[test]
fn txn_abort_restores_pre_transaction_data() {
    let mut e = small(PolicyKind::paper_default());
    write_lp(&mut e, 1, 0x10);
    write_lp(&mut e, 2, 0x11);
    let mut ops = Vec::new();
    let txn = e.txn_begin(&mut ops).unwrap();
    txn_write_lp(&mut e, txn, 1, 0x99);
    txn_write_lp(&mut e, txn, 2, 0x98);
    txn_write_lp(&mut e, txn, 1, 0x97); // second write to same page: one shadow
    assert_eq!(e.shadow_pages(), 2);
    e.txn_abort(txn).unwrap();
    assert_eq!(read_byte(&mut e, 1), 0x10);
    assert_eq!(read_byte(&mut e, 2), 0x11);
    assert_eq!(e.shadow_pages(), 0);
    e.check_invariants().unwrap();
}

#[test]
fn txn_abort_after_flush_still_restores() {
    let mut e = small(PolicyKind::paper_default());
    write_lp(&mut e, 4, 0x33);
    let mut ops = Vec::new();
    let txn = e.txn_begin(&mut ops).unwrap();
    txn_write_lp(&mut e, txn, 4, 0x44);
    // Force the dirty copy out of SRAM into a new flash location.
    e.flush_all(&mut ops).unwrap();
    assert!(matches!(e.page_table.lookup(4), Location::Flash(_)));
    e.txn_abort(txn).unwrap();
    assert_eq!(read_byte(&mut e, 4), 0x33);
    e.check_invariants().unwrap();
}

#[test]
fn txn_shadow_survives_cleaning() {
    let mut e = small(PolicyKind::paper_default());
    write_lp(&mut e, 6, 0x55);
    let mut ops = Vec::new();
    let txn = e.txn_begin(&mut ops).unwrap();
    txn_write_lp(&mut e, txn, 6, 0x66);
    // Clean every position so the shadow's segment is certainly cleaned.
    for pos in 0..e.positions() {
        e.clean_position(pos, &mut ops).unwrap();
    }
    assert!(
        e.stats().shadow_programs.get() > 0,
        "shadow must be relocated"
    );
    e.txn_abort(txn).unwrap();
    assert_eq!(read_byte(&mut e, 6), 0x55);
    e.check_invariants().unwrap();
}

#[test]
fn txn_begin_beyond_slot_capacity_rejected() {
    // Default configuration has one slot: a second begin is refused
    // with the slot count, never with another transaction's id.
    let mut e = small(PolicyKind::paper_default());
    let mut ops = Vec::new();
    let t1 = e.txn_begin(&mut ops).unwrap();
    assert!(matches!(
        e.txn_begin(&mut ops),
        Err(crate::error::EnvyError::TxnSlotsFull { slots: 1 })
    ));
    e.txn_commit(t1).unwrap();
    // A new transaction can open afterwards.
    let t2 = e.txn_begin(&mut ops).unwrap();
    assert!(t2 > t1);
    e.txn_commit(t2).unwrap();
}

fn small_with_slots(slots: u32) -> Engine {
    let mut e = Engine::new(
        EnvyConfig::small_test()
            .with_policy(PolicyKind::paper_default())
            .with_txn_slots(slots),
    )
    .unwrap();
    e.prefill().unwrap();
    e
}

#[test]
fn concurrent_txns_have_isolated_write_sets() {
    let mut e = small_with_slots(2);
    write_lp(&mut e, 1, 0x10);
    write_lp(&mut e, 2, 0x20);
    let mut ops = Vec::new();
    let t1 = e.txn_begin(&mut ops).unwrap();
    let t2 = e.txn_begin(&mut ops).unwrap();
    assert_eq!(e.open_txns(), [t1, t2]);
    txn_write_lp(&mut e, t1, 1, 0x11);
    txn_write_lp(&mut e, t2, 2, 0x22);
    // A third begin is refused: both slots are taken.
    assert!(matches!(
        e.txn_begin(&mut ops),
        Err(crate::error::EnvyError::TxnSlotsFull { slots: 2 })
    ));
    // t2 may not touch t1's page; the refusal names the holder.
    assert_eq!(
        e.write_page_bytes(1, 0, &[0xEE], Some(t2), &mut ops),
        Err(crate::error::EnvyError::TxnConflict { holder: t1 })
    );
    // Neither may a plain write — no silent join, no silent clobber.
    assert_eq!(
        e.write_page_bytes(1, 0, &[0xEF], None, &mut ops),
        Err(crate::error::EnvyError::TxnConflict { holder: t1 })
    );
    assert_eq!(e.stats().txn_conflict_refusals.get(), 2);
    // A plain write to an unowned page proceeds, independent of both.
    e.write_page_bytes(3, 0, &[0x33], None, &mut ops).unwrap();
    // Each transaction resolves independently.
    e.txn_abort(t1).unwrap();
    e.txn_commit(t2).unwrap();
    assert_eq!(read_byte(&mut e, 1), 0x10, "t1's write rolled back");
    assert_eq!(read_byte(&mut e, 2), 0x22, "t2's write committed");
    assert_eq!(read_byte(&mut e, 3), 0x33, "plain write survives the abort");
    assert_eq!(e.shadow_pages(), 0);
    assert_eq!(e.stats().open_txns.get(), 2);
    e.check_invariants().unwrap();
}

#[test]
fn plain_write_during_open_txn_executes_independently() {
    // The silent-join bug this PR removes: before, a plain write issued
    // while a transaction was open was absorbed into its write set and
    // vanished with its abort. Now it lands on its own.
    let mut e = small(PolicyKind::paper_default());
    write_lp(&mut e, 7, 0x70);
    let mut ops = Vec::new();
    let txn = e.txn_begin(&mut ops).unwrap();
    txn_write_lp(&mut e, txn, 1, 0x11);
    write_lp(&mut e, 7, 0x77); // plain, unowned page: independent
    e.txn_abort(txn).unwrap();
    assert_eq!(read_byte(&mut e, 7), 0x77, "plain write must survive abort");
    assert_eq!(e.shadow_pages(), 0);
    e.check_invariants().unwrap();
}

#[test]
fn txn_write_after_plain_cow_pins_durable_shadow() {
    // A plain write pulls the page into SRAM after the transaction
    // begins; a later transactional write to the same page must still
    // pin a durable flash pre-image (the engine drains the buffer
    // first), so abort restores the *plain-written* value.
    let mut e = small(PolicyKind::paper_default());
    write_lp(&mut e, 9, 0x90);
    let mut ops = Vec::new();
    let txn = e.txn_begin(&mut ops).unwrap();
    write_lp(&mut e, 9, 0x91); // plain: CoW into SRAM, no shadow
    assert_eq!(e.page_table.lookup(9), Location::Sram);
    txn_write_lp(&mut e, txn, 9, 0x92);
    assert_eq!(
        e.shadow_pages(),
        1,
        "pre-image pinned despite SRAM residency"
    );
    e.txn_abort(txn).unwrap();
    assert_eq!(read_byte(&mut e, 9), 0x91, "abort restores the plain value");
    e.check_invariants().unwrap();
}

#[test]
fn txn_wrong_id_rejected() {
    let mut e = small(PolicyKind::paper_default());
    let mut ops = Vec::new();
    let txn = e.txn_begin(&mut ops).unwrap();
    assert!(e.txn_commit(txn + 1).is_err());
    assert!(e.txn_abort(txn + 1).is_err());
    e.txn_commit(txn).unwrap();
    assert!(e.txn_commit(txn).is_err(), "already committed");
}

#[test]
fn interrupted_clean_recovers() {
    let mut e = small(PolicyKind::paper_default());
    churn(&mut e, 2_000, 21);
    let mut ops = Vec::new();
    // Interrupt a clean of position 0 after 3 copies.
    e.clean_interrupted(0, 3, &mut ops).unwrap();
    assert!(e.clean_in_progress());
    // Invariants are violated mid-clean (victim partially copied) — that
    // is the point. Power-fail and recover.
    e.power_failure();
    let report = e.recover(&mut ops).unwrap();
    assert!(report.resumed_clean);
    assert!(!e.clean_in_progress());
    e.check_invariants().unwrap();
}

#[test]
fn interrupted_clean_preserves_data() {
    let mut e = small(PolicyKind::paper_default());
    let n = e.config().logical_pages;
    let mut mirror = vec![0xFFu8; n as usize];
    let mut rng = Rng::seed_from(31);
    for _ in 0..3_000 {
        let lp = rng.below(n);
        let v = rng.next_u64() as u8;
        write_lp(&mut e, lp, v);
        mirror[lp as usize] = v;
    }
    let mut ops = Vec::new();
    e.clean_interrupted(2, 5, &mut ops).unwrap();
    e.power_failure();
    e.recover(&mut ops).unwrap();
    for lp in 0..n {
        assert_eq!(read_byte(&mut e, lp), mirror[lp as usize], "page {lp}");
    }
}

#[test]
fn power_failure_preserves_buffered_writes() {
    let mut e = small(PolicyKind::paper_default());
    write_lp(&mut e, 8, 0xCD);
    assert_eq!(e.page_table.lookup(8), Location::Sram);
    e.power_failure();
    let mut ops = Vec::new();
    let report = e.recover(&mut ops).unwrap();
    assert!(!report.resumed_clean);
    assert!(report.buffered_pages > 0);
    assert_eq!(read_byte(&mut e, 8), 0xCD);
}

#[test]
fn recovery_rolls_back_open_txn() {
    let mut e = small(PolicyKind::paper_default());
    write_lp(&mut e, 3, 1);
    let mut ops = Vec::new();
    let txn = e.txn_begin(&mut ops).unwrap();
    txn_write_lp(&mut e, txn, 3, 2);
    e.power_failure();
    let report = e.recover(&mut ops).unwrap();
    // All-or-nothing: the uncommitted transaction is gone.
    assert_eq!(report.txn_rolled_back, [txn]);
    assert!(report.txn_completed.is_empty());
    assert_eq!(report.shadow_pages, 0);
    assert!(e.open_txns().is_empty());
    assert!(e.txn_abort(txn).is_err(), "already resolved by recovery");
    assert_eq!(read_byte(&mut e, 3), 1);
    assert_eq!(e.stats().txn_aborts.get(), 1);
}

#[test]
fn out_of_bounds_rejected() {
    let mut e = small(PolicyKind::paper_default());
    let n = e.config().logical_pages;
    let mut ops = Vec::new();
    assert!(matches!(
        e.write_page_bytes(n, 0, &[0], None, &mut ops),
        Err(crate::error::EnvyError::OutOfBounds { .. })
    ));
    let mut b = [0u8];
    assert!(e.read_page_bytes(n + 5, 0, &mut b).is_err());
}

#[test]
fn mmu_integration_hits_after_repeat_access() {
    let mut e = small(PolicyKind::paper_default());
    assert!(!e.mmu.access(3));
    assert!(e.mmu.access(3));
    // A write to the page invalidates its translation.
    write_lp(&mut e, 3, 1);
    assert!(!e.mmu.access(3));
}

#[test]
fn spare_rotates_through_cleans() {
    let mut e = small(PolicyKind::Fifo);
    let spare_before = e.spare;
    churn(&mut e, 10_000, 41);
    // After many cleans the spare is very likely a different segment,
    // and is always fully erased.
    let pps = e.config().geometry.pages_per_segment();
    assert_eq!(e.flash.erased_pages(e.spare), pps);
    assert!(e.stats().erases.get() > 0);
    let _ = spare_before; // rotation is probabilistic; erasedness is the invariant
}

// ---------------------------------------------------------------------
// Recovery paths (table-driven) and fault injection
// ---------------------------------------------------------------------

#[test]
fn recovery_paths_table() {
    struct Case {
        name: &'static str,
        setup: fn(&mut Engine, &mut Vec<BgOp>),
        check: fn(&RecoveryReport),
    }
    let cases = [
        Case {
            name: "non-empty write buffer",
            setup: |e, _| {
                write_lp(e, 8, 0xCD);
                write_lp(e, 9, 0xCE);
            },
            check: |r| {
                assert!(!r.resumed_clean);
                assert_eq!(r.buffered_pages, 2);
                assert_eq!(r.scavenged_pages, 0);
            },
        },
        Case {
            name: "mid-clean journal replay",
            setup: |e, ops| {
                churn(e, 2_000, 61);
                e.clean_interrupted(0, 3, ops).unwrap();
                assert!(e.clean_in_progress());
            },
            check: |r| assert!(r.resumed_clean),
        },
        Case {
            name: "open-transaction rolled back",
            setup: |e, ops| {
                write_lp(e, 3, 1);
                let txn = e.txn_begin(ops).unwrap();
                txn_write_lp(e, txn, 3, 2);
            },
            check: |r| {
                assert!(!r.txn_rolled_back.is_empty());
                assert_eq!(r.shadow_pages, 0);
                assert_eq!(r.released_shadows, 0);
            },
        },
        Case {
            name: "idle engine",
            setup: |_, _| {},
            check: |r| {
                assert!(!r.resumed_clean);
                assert_eq!(r.buffered_pages, 0);
                assert_eq!(r.dropped_buffer_pages, 0);
            },
        },
    ];
    for case in cases {
        let mut e = small(PolicyKind::paper_default());
        let mut ops = Vec::new();
        (case.setup)(&mut e, &mut ops);
        e.power_failure();
        let report = e.recover(&mut ops).unwrap();
        (case.check)(&report);
        e.check_invariants()
            .unwrap_or_else(|err| panic!("{}: {err}", case.name));
    }
}

#[test]
fn power_failure_drops_volatile_controller_state() {
    let mut e = small(PolicyKind::paper_default());
    write_lp(&mut e, 3, 1);
    assert!(!e.mmu.access(3));
    assert!(e.mmu.access(3), "translation cached");
    e.power_failure();
    // MMU cache gone, copy scratch poisoned; battery-backed state intact.
    assert!(!e.mmu.access(3), "MMU cache must not survive power loss");
    assert!(e.scratch.iter().all(|&b| b == 0xA5), "scratch not dropped");
    assert!(!e.wear_in_progress);
    let mut ops = Vec::new();
    e.recover(&mut ops).unwrap();
    assert_eq!(read_byte(&mut e, 3), 1);
}

#[test]
fn injected_program_fault_on_flush_is_retried_and_counted() {
    let mut e = small(PolicyKind::paper_default());
    write_lp(&mut e, 12, 0x5A);
    // Fail the first program issued from here on (the flush itself).
    e.arm_faults(FaultPlan::default().with_program_failures([1]));
    let mut ops = Vec::new();
    e.flush_all(&mut ops).unwrap();
    assert_eq!(e.stats().program_faults.get(), 1);
    assert_eq!(e.stats().program_retries.get(), 1);
    assert_eq!(e.stats().program_remaps.get(), 0);
    assert_eq!(read_byte(&mut e, 12), 0x5A);
    e.check_invariants().unwrap();
}

#[test]
fn program_faults_exhausting_the_target_segment_remap() {
    // Low utilization so the remapped target has erased room beyond the
    // remaining fault schedule.
    let config = EnvyConfig::scaled(2, 8, 32, 256)
        .with_policy(PolicyKind::Greedy)
        .with_utilization(0.3);
    let mut e = Engine::new(config).unwrap();
    e.prefill().unwrap();
    write_lp(&mut e, 0, 0x77);
    // Fail every program until well past one segment's erased capacity.
    e.arm_faults(FaultPlan::default().with_program_failures(1..=32));
    let mut ops = Vec::new();
    e.flush_all(&mut ops).unwrap();
    assert_eq!(e.stats().program_faults.get(), 32);
    assert!(
        e.stats().program_remaps.get() >= 1,
        "exhausting the target must remap"
    );
    assert_eq!(read_byte(&mut e, 0), 0x77);
    e.check_invariants().unwrap();
}

#[test]
fn injected_erase_fault_is_retried_and_counted() {
    let mut e = small(PolicyKind::paper_default());
    churn(&mut e, 2_000, 71);
    e.arm_faults(FaultPlan::default().with_erase_failures([1]));
    let mut ops = Vec::new();
    e.clean_position(0, &mut ops).unwrap();
    assert_eq!(e.stats().erase_faults.get(), 1);
    assert_eq!(e.stats().erase_retries.get(), 1);
    e.check_invariants().unwrap();
}

#[test]
fn empty_fault_plan_is_behavior_neutral() {
    let mut plain = small(PolicyKind::paper_default());
    let mut armed = small(PolicyKind::paper_default());
    armed.arm_faults(FaultPlan::default());
    churn(&mut plain, 8_000, 77);
    churn(&mut armed, 8_000, 77);
    let (p, a) = (plain.stats(), armed.stats());
    assert_eq!(p.pages_flushed.get(), a.pages_flushed.get());
    assert_eq!(p.clean_programs.get(), a.clean_programs.get());
    assert_eq!(p.cleans.get(), a.cleans.get());
    assert_eq!(p.erases.get(), a.erases.get());
    assert_eq!(p.wear_swaps.get(), a.wear_swaps.get());
    assert_eq!(p.program_faults.get(), 0);
    assert_eq!(a.program_faults.get(), 0);
    for lp in 0..plain.config().logical_pages {
        assert_eq!(read_byte(&mut plain, lp), read_byte(&mut armed, lp));
    }
}

#[test]
fn commit_crash_before_journal_rolls_back() {
    let mut e = small(PolicyKind::paper_default());
    write_lp(&mut e, 5, 0x10);
    let mut ops = Vec::new();
    let txn = e.txn_begin(&mut ops).unwrap();
    txn_write_lp(&mut e, txn, 5, 0x20);
    e.arm_faults(FaultPlan::crash_at(InjectionPoint::CommitBefore, 1));
    assert_eq!(e.txn_commit(txn), Err(crate::error::EnvyError::PowerLoss));
    e.power_failure();
    let report = e.recover(&mut ops).unwrap();
    // The commit record never reached the journal: the unacknowledged
    // commit never happened, and recovery rolls the transaction back.
    assert_eq!(report.txn_rolled_back, [txn]);
    assert!(e.open_txns().is_empty());
    assert_eq!(report.shadow_pages, 0);
    assert_eq!(read_byte(&mut e, 5), 0x10);
    e.check_invariants().unwrap();
}

#[test]
fn commit_crash_after_journal_completes_commit() {
    // The satellite case: power fails *between* the journaled commit
    // record and the shadow release. The record wins — recovery finishes
    // the commit, never rolls back.
    let mut e = small(PolicyKind::paper_default());
    write_lp(&mut e, 5, 0x10);
    let mut ops = Vec::new();
    let txn = e.txn_begin(&mut ops).unwrap();
    txn_write_lp(&mut e, txn, 5, 0x20);
    e.arm_faults(FaultPlan::crash_at(InjectionPoint::CommitAfterJournal, 1));
    assert_eq!(e.txn_commit(txn), Err(crate::error::EnvyError::PowerLoss));
    assert_eq!(e.commit_records(), [txn], "record survives the crash");
    assert_eq!(e.shadow_pages(), 1, "release had not run yet");
    e.power_failure();
    let report = e.recover(&mut ops).unwrap();
    assert_eq!(report.txn_completed, [txn]);
    assert!(report.txn_rolled_back.is_empty());
    assert!(e.commit_records().is_empty());
    assert!(e.open_txns().is_empty());
    assert_eq!(report.shadow_pages, 0);
    assert!(e.txn_abort(txn).is_err(), "nothing left to abort");
    assert_eq!(read_byte(&mut e, 5), 0x20);
    assert_eq!(e.stats().txn_commits.get(), 1);
    e.check_invariants().unwrap();
}

#[test]
fn commit_crash_after_point_is_durable() {
    let mut e = small(PolicyKind::paper_default());
    write_lp(&mut e, 5, 0x10);
    let mut ops = Vec::new();
    let txn = e.txn_begin(&mut ops).unwrap();
    txn_write_lp(&mut e, txn, 5, 0x20);
    e.arm_faults(FaultPlan::crash_at(InjectionPoint::CommitAfterPoint, 1));
    assert_eq!(e.txn_commit(txn), Err(crate::error::EnvyError::PowerLoss));
    e.power_failure();
    let report = e.recover(&mut ops).unwrap();
    // The commit had fully completed (record written, shadows released,
    // record cleared): recovery finds nothing to resolve.
    assert!(e.open_txns().is_empty());
    assert!(report.txn_completed.is_empty());
    assert!(report.txn_rolled_back.is_empty());
    assert_eq!(report.shadow_pages, 0);
    assert!(e.txn_abort(txn).is_err(), "nothing left to abort");
    assert_eq!(read_byte(&mut e, 5), 0x20);
    e.check_invariants().unwrap();
}

#[test]
fn interleaved_txns_resolve_independently_across_crash() {
    // Two in-flight transactions, power cut between one's journaled
    // commit record and its release: recovery finishes that commit and
    // rolls the other back — each all-or-nothing, independently.
    let mut e = small_with_slots(2);
    write_lp(&mut e, 1, 0x10);
    write_lp(&mut e, 2, 0x20);
    let mut ops = Vec::new();
    let t1 = e.txn_begin(&mut ops).unwrap();
    let t2 = e.txn_begin(&mut ops).unwrap();
    txn_write_lp(&mut e, t1, 1, 0x11);
    txn_write_lp(&mut e, t2, 2, 0x22);
    e.arm_faults(FaultPlan::crash_at(InjectionPoint::CommitAfterJournal, 1));
    assert_eq!(e.txn_commit(t1), Err(crate::error::EnvyError::PowerLoss));
    assert_eq!(e.commit_records(), [t1]);
    e.power_failure();
    let report = e.recover(&mut ops).unwrap();
    assert_eq!(report.txn_completed, [t1], "journaled commit finishes");
    assert_eq!(report.txn_rolled_back, [t2], "open peer rolls back");
    assert!(e.open_txns().is_empty());
    assert_eq!(report.shadow_pages, 0);
    assert_eq!(read_byte(&mut e, 1), 0x11, "t1's write is durable");
    assert_eq!(read_byte(&mut e, 2), 0x20, "t2's write is gone");
    e.check_invariants().unwrap();
}

#[test]
fn begin_crash_points_leave_no_transaction_behind() {
    // Crash before the slot is taken: nothing to resolve. Crash after
    // the slot is taken but before the id is returned: recovery rolls
    // back an empty transaction. Either way no state changes.
    for (point, rolled_back) in [
        (InjectionPoint::BeginAfterDrain, 0),
        (InjectionPoint::BeginAfterOpen, 1),
    ] {
        let mut e = small(PolicyKind::paper_default());
        write_lp(&mut e, 1, 0x10);
        let mut ops = Vec::new();
        e.arm_faults(FaultPlan::crash_at(point, 1));
        assert_eq!(
            e.txn_begin(&mut ops),
            Err(crate::error::EnvyError::PowerLoss),
            "{point:?}"
        );
        e.power_failure();
        let report = e.recover(&mut ops).unwrap();
        assert_eq!(report.txn_rolled_back.len(), rolled_back, "{point:?}");
        assert!(report.txn_completed.is_empty(), "{point:?}");
        assert!(e.open_txns().is_empty(), "{point:?}");
        assert_eq!(read_byte(&mut e, 1), 0x10, "{point:?}: data untouched");
        // The slot is free again: a fresh transaction opens and works.
        let txn = e.txn_begin(&mut ops).unwrap();
        txn_write_lp(&mut e, txn, 1, 0x11);
        e.txn_commit(txn).unwrap();
        assert_eq!(read_byte(&mut e, 1), 0x11);
        e.check_invariants().unwrap();
    }
}

#[test]
fn abort_crash_points_roll_back_fully() {
    // Crash at every point inside txn_abort over a multi-page write set;
    // recovery must complete the rollback (no partial visibility).
    for (i, point) in [
        InjectionPoint::AbortBefore,
        InjectionPoint::AbortMidRollback,
        InjectionPoint::AbortAfterRollback,
    ]
    .into_iter()
    .enumerate()
    {
        let mut e = small(PolicyKind::paper_default());
        for lp in 0..4 {
            write_lp(&mut e, lp, 0x10 + lp as u8);
        }
        let mut ops = Vec::new();
        let txn = e.txn_begin(&mut ops).unwrap();
        for lp in 0..4 {
            txn_write_lp(&mut e, txn, lp, 0x90 + lp as u8);
        }
        // Fire on the second hit for the mid-rollback point so at least
        // one page is already restored when power cuts.
        let nth = if point == InjectionPoint::AbortMidRollback {
            2
        } else {
            1
        };
        e.arm_faults(FaultPlan::crash_at(point, nth));
        assert_eq!(
            e.txn_abort(txn),
            Err(crate::error::EnvyError::PowerLoss),
            "case {i}: {point:?}"
        );
        e.power_failure();
        let report = e.recover(&mut ops).unwrap();
        assert_eq!(report.txn_rolled_back, [txn], "case {i}: {point:?}");
        assert!(e.open_txns().is_empty());
        assert_eq!(report.shadow_pages, 0);
        for lp in 0..4 {
            assert_eq!(
                read_byte(&mut e, lp),
                0x10 + lp as u8,
                "case {i}: {point:?} page {lp} must show pre-transaction data"
            );
        }
        assert_eq!(e.stats().txn_aborts.get(), 1, "counted exactly once");
        e.check_invariants().unwrap();
    }
}

#[test]
fn abort_crash_restores_fresh_pages_to_unmapped() {
    // A page born inside the transaction has no shadow; a crashed abort
    // must still return it to the unmapped (erased) state. No prefill,
    // so the page really is unmapped before the transaction.
    let mut e = Engine::new(EnvyConfig::small_test()).unwrap();
    let fresh_lp = 5;
    let mut ops = Vec::new();
    let txn = e.txn_begin(&mut ops).unwrap();
    txn_write_lp(&mut e, txn, fresh_lp, 0x42);
    e.arm_faults(FaultPlan::crash_at(InjectionPoint::AbortBefore, 1));
    assert_eq!(e.txn_abort(txn), Err(crate::error::EnvyError::PowerLoss));
    e.power_failure();
    let report = e.recover(&mut ops).unwrap();
    assert_eq!(report.txn_rolled_back, [txn]);
    assert_eq!(read_byte(&mut e, fresh_lp), 0xFF, "fresh page unmapped");
    e.check_invariants().unwrap();
}

/// Drive a mixed workload (plain writes plus transactions) against an
/// engine armed to crash at `point`, then power-fail, recover, and
/// verify the recovery contract: invariants hold, every acknowledged
/// write reads back, and the single in-flight write is either fully old
/// or fully new. Returns `false` if the workload never reached `point`.
fn crash_recover_verify(point: InjectionPoint, seed: u64) -> bool {
    let config = EnvyConfig::scaled(2, 8, 32, 256)
        .with_policy(PolicyKind::LocalityGathering)
        .with_utilization(0.7)
        .with_buffer_pages(8)
        .with_wear_threshold(5);
    let mut e = Engine::new(config).unwrap();
    e.prefill().unwrap();
    let n = e.config().logical_pages;
    let mut mirror = vec![0xFFu8; n as usize];
    let mut rng = Rng::seed_from(seed);
    e.arm_faults(FaultPlan::crash_at(point, 1));
    let mut ops = Vec::new();
    // Open transaction: (id, mirror snapshot at begin).
    let mut txn: Option<(u64, Vec<u8>)> = None;
    // Plain write cut off by the crash: may be old or new.
    let mut in_flight: Option<(u64, u8)> = None;
    let mut crashed = false;
    for step in 0..60_000u64 {
        use crate::error::EnvyError::PowerLoss;
        let phase = step % 37;
        if phase == 0 && txn.is_none() {
            match e.txn_begin(&mut ops) {
                Ok(id) => txn = Some((id, mirror.clone())),
                Err(PowerLoss) => {
                    crashed = true;
                    break;
                }
                Err(err) => panic!("txn_begin: {err}"),
            }
            continue;
        }
        if phase == 20 {
            if let Some((id, ref snapshot)) = txn {
                // Alternate commit and abort so both resolution paths
                // (and their crash points) get exercised.
                if (step / 37) % 2 == 0 {
                    match e.txn_commit(id) {
                        Ok(()) => txn = None,
                        Err(PowerLoss) => {
                            crashed = true;
                            break;
                        }
                        Err(err) => panic!("txn_commit: {err}"),
                    }
                } else {
                    match e.txn_abort(id) {
                        Ok(()) => {
                            mirror = snapshot.clone();
                            txn = None;
                        }
                        Err(PowerLoss) => {
                            crashed = true;
                            break;
                        }
                        Err(err) => panic!("txn_abort: {err}"),
                    }
                }
                continue;
            }
        }
        // Hammer a hot region (concentrates cleaning and wear on a few
        // segments) with occasional full-range writes for coverage.
        let lp = if step % 8 == 7 {
            rng.below(n)
        } else {
            rng.below(64.min(n))
        };
        let v = rng.next_u64() as u8;
        ops.clear();
        // While a transaction is open, write inside it — the snapshot
        // semantics below assume every write joins the open write set.
        let writer = txn.as_ref().map(|&(id, _)| id);
        match e.write_page_bytes(lp, 0, &[v], writer, &mut ops) {
            Ok(_) => mirror[lp as usize] = v,
            Err(PowerLoss) => {
                in_flight = Some((lp, v));
                crashed = true;
                break;
            }
            Err(err) => panic!("write: {err}"),
        }
    }
    if !crashed {
        return false;
    }
    assert!(e.crash_fired());
    e.power_failure();
    let mut rops = Vec::new();
    let report = e
        .recover(&mut rops)
        .unwrap_or_else(|err| panic!("recover after {point:?}: {err}"));
    e.check_invariants()
        .unwrap_or_else(|err| panic!("invariants after {point:?}: {err}"));
    assert!(
        e.open_txns().is_empty(),
        "no transaction stays open across recovery after {point:?}"
    );
    if let Some((id, snapshot)) = txn {
        if report.txn_rolled_back.contains(&id) {
            // The transaction never reached its durable commit point (or
            // was already aborting): every page it touched — including
            // the in-flight one — reverts to the begin-time snapshot.
            mirror = snapshot;
            in_flight = None;
        } else {
            // The commit record survived the crash (recovery finished
            // the release) or the commit fully completed before it:
            // every acknowledged transaction write is durable, which the
            // full-mirror sweep below verifies.
            assert!(
                report.txn_completed == [id] || report.txn_completed.is_empty(),
                "foreign transaction resolved after {point:?}: {report:?}"
            );
        }
    } else {
        // The only rollback allowed with no acknowledged transaction is
        // an (empty) begin cut between taking its slot and returning the
        // id — the begin_after_open point.
        assert!(
            report.txn_rolled_back.len() <= 1,
            "phantom rollback after {point:?}: {report:?}"
        );
    }
    if let Some((lp, v)) = in_flight {
        let got = read_byte(&mut e, lp);
        assert!(
            got == mirror[lp as usize] || got == v,
            "page {lp} after {point:?}: got {got:#x}, want old {:#x} or new {v:#x}",
            mirror[lp as usize]
        );
        mirror[lp as usize] = got;
    }
    for lp in 0..n {
        assert_eq!(
            read_byte(&mut e, lp),
            mirror[lp as usize],
            "acknowledged write lost at page {lp} after crash at {point:?}"
        );
    }
    e.check_invariants().unwrap();
    // The engine keeps working after recovery.
    e.disarm_faults();
    churn(&mut e, 500, seed ^ 0x5eed);
    e.check_invariants().unwrap();
    true
}

#[test]
fn crash_at_every_injection_point_recovers() {
    for (i, &point) in InjectionPoint::ALL.iter().enumerate() {
        let fired = crash_recover_verify(point, 1000 + i as u64);
        assert!(fired, "workload never reached {point:?}");
    }
}

#[test]
fn policy_partition_counts() {
    let e = small(PolicyKind::Hybrid {
        segments_per_partition: 4,
    });
    // 16 segments -> 15 positions -> ceil(15/4) = 4 partitions.
    assert_eq!(e.policy.partitions(), 4);
    let e = small(PolicyKind::LocalityGathering);
    assert_eq!(e.policy.partitions(), 15);
    let e = small(PolicyKind::Fifo);
    assert_eq!(e.policy.partitions(), 1);
    let e = small(PolicyKind::Greedy);
    assert_eq!(e.policy.partitions(), 1);
    let e = small(PolicyKind::CostBenefit);
    assert_eq!(e.policy.partitions(), 1);
}
