//! Host-visible read and write paths (§3.1–3.2): transparent in-place
//! update semantics via copy-on-write and page remapping.

use crate::addr::{Location, LogicalPage};
use crate::engine::Engine;
use crate::error::EnvyError;
use crate::timing::BgOp;

/// Where a host read was serviced from (drives the latency model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    /// The page was in the SRAM write buffer.
    Sram,
    /// The page was read from Flash.
    Flash {
        /// The bank accessed (for suspension modeling).
        bank: u32,
    },
    /// The page was never written; erased (0xFF) bytes were returned.
    Unmapped,
}

/// What a host write did (drives the latency model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// The page was already in SRAM; the write was absorbed in place.
    SramHit,
    /// A copy-on-write pulled the page from Flash into SRAM (§3.1–3.2).
    CopyOnWrite {
        /// The bank the original page was read from.
        bank: u32,
    },
    /// First write to a never-written page: a fresh SRAM page was
    /// allocated with erased contents.
    Fresh,
}

/// Outcome of a host write at page granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteResult {
    /// What the write did.
    pub kind: WriteKind,
}

impl Engine {
    fn check_page(&self, lp: LogicalPage, offset: usize, len: usize) -> Result<(), EnvyError> {
        let pb = self.addr_map.page_bytes() as usize;
        debug_assert!(offset + len <= pb, "chunk exceeds page bounds");
        if lp >= self.config.logical_pages {
            return Err(EnvyError::OutOfBounds {
                addr: lp * pb as u64 + offset as u64,
                size: self.config.logical_bytes(),
            });
        }
        Ok(())
    }

    /// Read bytes from within one logical page.
    ///
    /// # Errors
    ///
    /// [`EnvyError::OutOfBounds`] if the page is outside the logical
    /// array.
    #[inline]
    pub fn read_page_bytes(
        &mut self,
        lp: LogicalPage,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<ReadSource, EnvyError> {
        self.check_page(lp, offset, buf.len())?;
        match self.page_table.lookup(lp) {
            Location::Sram => {
                // One probe answers both residency and payload presence;
                // a payload-less frame (store_data off) reads as erased.
                match self.buffer.read_into(lp, offset, buf) {
                    Some(true) => {}
                    Some(false) => buf.fill(0xFF),
                    None => {
                        debug_assert!(false, "SRAM mapping must be buffered");
                        buf.fill(0xFF);
                    }
                }
                Ok(ReadSource::Sram)
            }
            Location::Flash(loc) => {
                // Zero-copy: the sub-page range lands straight in the
                // caller's slice instead of round-tripping through scratch.
                self.flash
                    .read_page_into(loc.segment, loc.page, offset, buf)?;
                Ok(ReadSource::Flash {
                    bank: self.flash.bank_of(loc.segment),
                })
            }
            Location::Unmapped => {
                buf.fill(0xFF);
                Ok(ReadSource::Unmapped)
            }
        }
    }

    /// Refuse a write that would cross transaction isolation, and
    /// validate a transactional writer's id. The write-set rule: a page
    /// owned by an open transaction may only be written by that
    /// transaction; everyone else — another transaction or a plain
    /// write — gets [`EnvyError::TxnConflict`], an abort decision rather
    /// than a silent join or a busy wait.
    fn check_txn_isolation(
        &mut self,
        lp: LogicalPage,
        writer: Option<u64>,
    ) -> Result<(), EnvyError> {
        if let Some(txn) = writer {
            if !self.open_txns.contains(&txn) {
                return Err(EnvyError::NoSuchTxn { txn });
            }
        }
        if let Some(holder) = self.txn_owner_of(lp) {
            if writer != Some(holder) {
                self.stats.txn_conflict_refusals.incr();
                return Err(EnvyError::TxnConflict { holder });
            }
        }
        Ok(())
    }

    /// Write bytes within one logical page, with transparent in-place
    /// update semantics: a Flash-resident page is copied into SRAM first
    /// (copy-on-write, §3.1), and the page table is repointed atomically.
    /// Any flushing or cleaning this triggers is appended to `ops`.
    ///
    /// `writer` is the transaction performing the write (`None` for a
    /// plain host write). A transactional first write pins the page's
    /// pre-image into the writer's write set; a plain write never does —
    /// and either kind is refused with [`EnvyError::TxnConflict`] when
    /// the page already belongs to a *different* open transaction.
    ///
    /// # Errors
    ///
    /// [`EnvyError::OutOfBounds`]; [`EnvyError::NoSuchTxn`] for an
    /// unknown `writer`; [`EnvyError::TxnConflict`] on a write-set hit;
    /// or a propagated cleaning error.
    pub fn write_page_bytes(
        &mut self,
        lp: LogicalPage,
        offset: usize,
        bytes: &[u8],
        writer: Option<u64>,
        ops: &mut Vec<BgOp>,
    ) -> Result<WriteResult, EnvyError> {
        self.check_page(lp, offset, bytes.len())?;
        if writer.is_some() || !self.open_txns.is_empty() {
            self.check_txn_isolation(lp, writer)?;
            // A transactional write to an SRAM-resident page it does not
            // own yet has no Flash pre-image to pin (a plain write pulled
            // the page into SRAM after the transaction began). Drain the
            // buffer so the page is Flash-resident and the copy-on-write
            // below yields a durable shadow.
            if writer.is_some()
                && self.txn_owner_of(lp).is_none()
                && self.page_table.lookup(lp) == Location::Sram
            {
                self.flush_all(ops)?;
            }
        }
        match self.page_table.lookup(lp) {
            Location::Sram => {
                // §3.2: "Changes can be made directly in SRAM."
                let found = self.buffer.write(lp, offset, bytes);
                debug_assert!(found, "SRAM mapping must be buffered");
                self.stats.sram_write_hits.incr();
                self.trace.emit(crate::trace::TraceEvent::BufferHit { lp });
                Ok(WriteResult {
                    kind: WriteKind::SramHit,
                })
            }
            Location::Flash(loc) => {
                // Copy-on-write (§3.2, Figure 3): make room, copy the
                // original Flash page to SRAM, apply the write, update the
                // page table, invalidate the old copy.
                while self.buffer.is_full() {
                    self.flush_tail(ops)?;
                }
                let origin = self.pos_of[loc.segment as usize];
                debug_assert_ne!(origin, crate::engine::POS_NONE, "live data in the spare");
                // One probe claims the SRAM frame; the Flash original is
                // staged through the controller's scratch page with the
                // host bytes applied on top, then lands in the shared
                // frame arena as one whole-page store.
                match self
                    .buffer
                    .insert_frame(lp, Some(origin))
                    .expect("buffer has space after flushing")
                {
                    Some(mut frame) => {
                        self.flash
                            .read_page_into(loc.segment, loc.page, 0, &mut self.scratch)?;
                        self.scratch[offset..offset + bytes.len()].copy_from_slice(bytes);
                        frame.copy_from_slice(&self.scratch);
                    }
                    None => {
                        self.flash.read_page(loc.segment, loc.page, None)?;
                    }
                }
                // §6: the invalidated original is a free shadow copy —
                // pinned only for a *transactional* writer. A plain write
                // leaves no shadow and joins no transaction.
                if let Some(txn) = writer {
                    if self.shadows.insert_if_absent(lp, loc, txn) {
                        self.stats.shadow_pages_pinned.incr();
                    }
                }
                self.flash.invalidate_page(loc.segment, loc.page)?;
                self.page_table.map_sram(lp);
                self.mmu.invalidate(lp);
                self.stats.cow_ops.incr();
                self.trace.emit(crate::trace::TraceEvent::Cow {
                    lp,
                    segment: loc.segment,
                });
                let bank = self.flash.bank_of(loc.segment);
                self.maybe_flush(ops)?;
                Ok(WriteResult {
                    kind: WriteKind::CopyOnWrite { bank },
                })
            }
            Location::Unmapped => {
                while self.buffer.is_full() {
                    self.flush_tail(ops)?;
                }
                // A page born inside a transaction has no Flash shadow;
                // rollback must return it to the unmapped state. It joins
                // the writer's write set — a plain fresh write joins none.
                if let Some(txn) = writer {
                    self.txn_fresh.insert(lp, txn);
                }
                if let Some(mut frame) = self
                    .buffer
                    .insert_frame(lp, None)
                    .expect("buffer has space after flushing")
                {
                    frame.fill(0xFF);
                    frame.write(offset, bytes);
                }
                self.page_table.map_sram(lp);
                self.mmu.invalidate(lp);
                self.stats.fresh_allocs.incr();
                self.trace.emit(crate::trace::TraceEvent::FreshAlloc { lp });
                self.maybe_flush(ops)?;
                Ok(WriteResult {
                    kind: WriteKind::Fresh,
                })
            }
        }
    }
}
