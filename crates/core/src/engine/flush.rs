//! Flushing pages from the SRAM write buffer into Flash (§3.2, §3.4).

use crate::addr::FlashLocation;
use crate::engine::Engine;
use crate::error::EnvyError;
use crate::timing::{BgKind, BgOp};

impl Engine {
    /// Flush from the tail until the buffer is back at the threshold
    /// (§3.2: "Pages are flushed from the buffer when their number
    /// exceeds a certain threshold").
    ///
    /// # Errors
    ///
    /// Propagates cleaning errors.
    pub(crate) fn maybe_flush(&mut self, ops: &mut Vec<BgOp>) -> Result<(), EnvyError> {
        while self.buffer.len() > self.config.flush_threshold {
            self.flush_tail(ops)?;
        }
        Ok(())
    }

    /// Drain the buffer completely (used by transaction begin and
    /// shutdown).
    ///
    /// # Errors
    ///
    /// Propagates cleaning errors.
    pub fn flush_all(&mut self, ops: &mut Vec<BgOp>) -> Result<(), EnvyError> {
        while !self.buffer.is_empty() {
            self.flush_tail(ops)?;
        }
        Ok(())
    }

    /// Flush the oldest buffered page to Flash, cleaning first if the
    /// policy's target segment has no space.
    ///
    /// # Errors
    ///
    /// Propagates cleaning errors; does nothing on an empty buffer.
    pub(crate) fn flush_tail(&mut self, ops: &mut Vec<BgOp>) -> Result<(), EnvyError> {
        let Some(tail) = self.buffer.peek_tail() else {
            return Ok(());
        };
        let origin = tail.origin;
        // Resolve the destination first — it may trigger a clean, which
        // never touches the buffer — then commit the pop.
        let pos = self.policy_flush_target(origin, ops)?;
        let page = self.buffer.pop_tail().expect("peeked above");
        let phys = self.order[pos as usize];
        let pg = self.write_cursor(phys);
        let t = self.flash.program_page(phys, pg, page.data.as_deref())?;
        self.page_table.map_flash(
            page.logical,
            FlashLocation {
                segment: phys,
                page: pg,
            },
        );
        self.mmu.invalidate(page.logical);
        self.stats.pages_flushed.incr();
        self.flush_clock += 1;
        self.seg_last_write[phys as usize] = self.flush_clock;
        ops.push(BgOp {
            bank: self.flash.bank_of(phys),
            kind: BgKind::Flush,
            duration: t,
        });
        // The frame's contents are now in Flash; hand it back so the next
        // copy-on-write insert reuses it instead of allocating.
        if let Some(frame) = page.data {
            self.buffer.recycle_frame(frame);
        }
        Ok(())
    }
}
