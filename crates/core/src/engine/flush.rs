//! Flushing pages from the SRAM write buffer into Flash (§3.2, §3.4).

use crate::addr::FlashLocation;
use crate::engine::{Engine, InjectionPoint};
use crate::error::EnvyError;
use crate::timing::{BgKind, BgOp};
use envy_flash::FlashError;

impl Engine {
    /// Flush from the tail until the buffer is back at the threshold
    /// (§3.2: "Pages are flushed from the buffer when their number
    /// exceeds a certain threshold").
    ///
    /// # Errors
    ///
    /// Propagates cleaning errors.
    pub(crate) fn maybe_flush(&mut self, ops: &mut Vec<BgOp>) -> Result<(), EnvyError> {
        while self.buffer.len() > self.config.flush_threshold {
            self.flush_tail(ops)?;
        }
        Ok(())
    }

    /// Drain the buffer completely (used by transaction begin and
    /// shutdown).
    ///
    /// # Errors
    ///
    /// Propagates cleaning errors.
    pub fn flush_all(&mut self, ops: &mut Vec<BgOp>) -> Result<(), EnvyError> {
        while !self.buffer.is_empty() {
            self.flush_tail(ops)?;
        }
        Ok(())
    }

    /// Flush the oldest buffered page to Flash, cleaning first if the
    /// policy's target segment has no space.
    ///
    /// Crash-safe ordering: the page is programmed and the page table
    /// repointed *before* the buffered copy is popped, so at every
    /// injection point the page of record (battery-backed SRAM until the
    /// map update, Flash afterwards) survives a power cut. An injected
    /// `program_error` is retried on the next erased page of the target
    /// segment, remapping to a fresh target if retries exhaust it.
    ///
    /// # Errors
    ///
    /// Propagates cleaning errors and armed power failures
    /// ([`EnvyError::PowerLoss`]); does nothing on an empty buffer.
    pub(crate) fn flush_tail(&mut self, ops: &mut Vec<BgOp>) -> Result<(), EnvyError> {
        let Some(tail) = self.buffer.peek_tail() else {
            return Ok(());
        };
        let origin = tail.origin;
        let logical = tail.logical;
        let stores = self.buffer.stores_data();
        // Resolve the destination first — it may trigger a clean, which
        // never touches the buffer.
        let pos = self.policy_flush_target(origin, ops)?;
        let mut phys = self.order[pos as usize];
        self.crash_point(InjectionPoint::FlushBeforeProgram)?;
        if self.crash_armed(InjectionPoint::FlushDuringProgram) {
            // Torn program: a prefix of the bank's chips latch their
            // byte, then the power cuts. The SRAM copy is still the page
            // of record; recovery scavenges the orphan.
            let chips = self.torn_chips();
            let pg = self.write_cursor(phys);
            // Stage the tail payload through the controller scratch: the
            // program call needs a plain slice, and the buffered frame
            // (shared with concurrent readers) stays live until the pop.
            if stores {
                self.buffer
                    .read_into(logical, 0, &mut self.scratch)
                    .expect("tail page is buffered");
            }
            let data = stores.then_some(self.scratch.as_slice());
            self.flash.program_page_torn(phys, pg, data, chips)?;
            return Err(EnvyError::PowerLoss);
        }
        // Program with retry-then-remap on an injected verify failure: a
        // failed page is dead (invalid until erased), so retry on the
        // next erased page; if failures exhaust the segment, re-resolve
        // a fresh target (which may clean).
        let (t, pg) = loop {
            if !self.has_space(phys) {
                let npos = self.policy_flush_target(origin, ops)?;
                let exhausted = phys;
                phys = self.order[npos as usize];
                self.stats.program_remaps.incr();
                self.trace
                    .emit(crate::trace::TraceEvent::Remap { segment: exhausted });
            }
            let pg = self.write_cursor(phys);
            // Re-stage each attempt: target re-resolution above may have
            // cleaned, and cleaning shares the scratch page.
            if stores {
                self.buffer
                    .read_into(logical, 0, &mut self.scratch)
                    .expect("tail page is buffered");
            }
            let data = stores.then_some(self.scratch.as_slice());
            match self.flash.program_page(phys, pg, data) {
                Ok(t) => break (t, pg),
                Err(FlashError::ProgramFailed { .. }) => {
                    self.stats.program_faults.incr();
                    self.stats.program_retries.incr();
                    self.trace
                        .emit(crate::trace::TraceEvent::ProgramFault { segment: phys });
                }
                Err(e) => return Err(e.into()),
            }
        };
        self.crash_point(InjectionPoint::FlushAfterProgram)?;
        self.page_table.map_flash(
            logical,
            FlashLocation {
                segment: phys,
                page: pg,
            },
        );
        self.mmu.invalidate(logical);
        self.crash_point(InjectionPoint::FlushAfterMap)?;
        self.buffer.pop_tail().expect("peeked above");
        self.stats.pages_flushed.incr();
        self.trace.emit(crate::trace::TraceEvent::Flush {
            lp: logical,
            segment: phys,
        });
        self.flush_clock += 1;
        self.seg_last_write[phys as usize] = self.flush_clock;
        ops.push(BgOp::once(self.flash.bank_of(phys), BgKind::Flush, t));
        Ok(())
    }
}
