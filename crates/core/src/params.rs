//! The paper's technology constants (Figure 1) and system cost model
//! (§3.3, §5.1).

/// One row of the paper's Figure 1 storage-technology comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Technology name.
    pub name: &'static str,
    /// Read access time in nanoseconds (disk times are milliseconds-scale
    /// and expressed in ns here).
    pub read_ns: u64,
    /// Write/program access time in nanoseconds (Flash program is the
    /// 4–10 µs byte program; we list the paper's 4 µs figure).
    pub write_ns: u64,
    /// 1994 cost per megabyte in dollars.
    pub cost_per_mb: f64,
    /// Standby current per gigabyte in amps for data retention.
    pub retention_amps_per_gb: f64,
}

/// Figure 1: feature comparison of storage technologies.
pub const TECHNOLOGIES: [Technology; 4] = [
    Technology {
        name: "Disk",
        read_ns: 8_300_000,
        write_ns: 8_300_000,
        cost_per_mb: 1.00,
        retention_amps_per_gb: 0.0,
    },
    Technology {
        name: "DRAM",
        read_ns: 60,
        write_ns: 60,
        cost_per_mb: 35.00,
        retention_amps_per_gb: 1.0,
    },
    Technology {
        name: "Low Power SRAM",
        read_ns: 85,
        write_ns: 85,
        cost_per_mb: 120.00,
        retention_amps_per_gb: 0.002,
    },
    Technology {
        name: "Flash",
        read_ns: 85,
        write_ns: 4_000,
        cost_per_mb: 30.00,
        retention_amps_per_gb: 0.0,
    },
];

/// Estimated component costs of an eNVy system, using Figure 1 prices.
///
/// §5.1: "The total cost of such a system … is estimated to be about
/// $70,000 … about one quarter of a pure SRAM system of the same size
/// ($250,000)."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Dollars of Flash.
    pub flash_dollars: f64,
    /// Dollars of battery-backed SRAM (write buffer + page table).
    pub sram_dollars: f64,
}

impl CostEstimate {
    /// Estimate the memory cost of a system with the given sizes in bytes.
    pub fn for_sizes(flash_bytes: u64, sram_bytes: u64) -> CostEstimate {
        const MB: f64 = 1024.0 * 1024.0;
        CostEstimate {
            flash_dollars: flash_bytes as f64 / MB * 30.0,
            sram_dollars: sram_bytes as f64 / MB * 120.0,
        }
    }

    /// Total memory cost in dollars.
    pub fn total(&self) -> f64 {
        self.flash_dollars + self.sram_dollars
    }

    /// Cost of a pure-SRAM system with the same usable capacity.
    pub fn pure_sram_equivalent(flash_bytes: u64) -> f64 {
        const MB: f64 = 1024.0 * 1024.0;
        flash_bytes as f64 / MB * 120.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_flash_is_cheapest_memory() {
        let flash = &TECHNOLOGIES[3];
        assert_eq!(flash.name, "Flash");
        for other in &TECHNOLOGIES[1..3] {
            assert!(flash.cost_per_mb < other.cost_per_mb);
        }
    }

    #[test]
    fn figure_1_flash_needs_no_retention_power() {
        assert_eq!(TECHNOLOGIES[3].retention_amps_per_gb, 0.0);
        assert_eq!(TECHNOLOGIES[0].retention_amps_per_gb, 0.0); // disk too
    }

    #[test]
    fn paper_cost_estimates_reproduce_5_1() {
        const GB: u64 = 1024 * 1024 * 1024;
        // 2 GB Flash + 64 MB SRAM (16 write buffer + 48 page table).
        let est = CostEstimate::for_sizes(2 * GB, 64 * 1024 * 1024);
        // "about $70,000"
        assert!(
            (est.total() - 69_120.0).abs() < 1.0,
            "total {}",
            est.total()
        );
        // "one quarter of a pure SRAM system of the same size ($250,000)"
        let sram_only = CostEstimate::pure_sram_equivalent(2 * GB);
        assert!((sram_only - 245_760.0).abs() < 1.0);
        assert!(sram_only / est.total() > 3.5);
    }

    #[test]
    fn per_gigabyte_page_table_cost_matches_3_3() {
        // §3.3: "For every gigabyte of Flash ($30,000), 24 MBytes of SRAM
        // ($2,880) is required for the page table, only about a 10%
        // increase".
        const GB: u64 = 1024 * 1024 * 1024;
        let est = CostEstimate::for_sizes(GB, 24 * 1024 * 1024);
        assert!((est.flash_dollars - 30_720.0).abs() < 1.0);
        assert!((est.sram_dollars - 2_880.0).abs() < 1.0);
        assert!(est.sram_dollars / est.flash_dollars < 0.11);
    }
}
