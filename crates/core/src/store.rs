//! The public eNVy storage interface: a byte-addressable, non-volatile
//! linear array with in-place update semantics.
//!
//! Two access paths are provided:
//!
//! * **Untimed** ([`EnvyStore::read`] / [`EnvyStore::write`]): performs
//!   every state transition (copy-on-write, flushing, cleaning, wear
//!   leveling) but treats background device time as instantaneous. Used
//!   for functional code (B-Trees, filesystems) and the cleaning-cost
//!   studies, where only program-operation counts matter.
//! * **Timed** ([`EnvyStore::read_at`] / [`EnvyStore::write_at`]): the
//!   caller supplies the simulated arrival time of each access; the store
//!   splits it into host-bus words, replays background work against the
//!   clock, models long-operation suspension and buffer-full stalls, and
//!   returns per-access latency — the model behind Figures 13–15.

use crate::config::EnvyConfig;
use crate::engine::{Engine, FaultPlan, ReadSource, RecoveryReport, WriteKind};
use crate::error::EnvyError;
use crate::memory::Memory;
use crate::stats::EnvyStats;
use crate::timing::{BgOp, TimingState};
use crate::trace::{TraceEvent, TraceRing};
use envy_sim::stats::TimeSeries;
use envy_sim::time::Ns;
use envy_sync::SharedEpoch;

/// Columns of the store's periodic time series (see
/// [`EnvyStore::enable_sampler`]): per-window host word counts and
/// controller activity, the per-window cleaning cost, and instantaneous
/// backlog and buffer occupancy at the sample point.
pub const SAMPLER_COLUMNS: &[&str] = &[
    "host_reads",
    "host_writes",
    "pages_flushed",
    "clean_programs",
    "erases",
    "cleaning_cost",
    "backlog_us",
    "buffer_pages",
];

/// Periodic sampler state: the series plus the counter values at the end
/// of the previous window (so each row holds per-window deltas).
#[derive(Debug)]
struct Sampler {
    series: TimeSeries,
    last_reads: u64,
    last_writes: u64,
    last_flushes: u64,
    last_cleans: u64,
    last_erases: u64,
}

/// Timing of one host access (a byte range split into word accesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedAccess {
    /// Simulated completion time.
    pub completed: Ns,
    /// Total latency from issue to completion.
    pub latency: Ns,
    /// Number of host-bus word accesses performed.
    pub words: u32,
}

/// An eNVy storage system: Flash array + controller + SRAM, presented as
/// linear non-volatile memory.
///
/// # Example
///
/// ```
/// use envy_core::{EnvyConfig, EnvyStore};
///
/// # fn main() -> Result<(), envy_core::EnvyError> {
/// let mut store = EnvyStore::new(EnvyConfig::small_test())?;
/// store.write(4096, b"hello")?;
/// let mut buf = [0u8; 5];
/// store.read(4096, &mut buf)?;
/// assert_eq!(&buf, b"hello");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EnvyStore {
    engine: Engine,
    timing: TimingState,
    clock: Ns,
    ops: Vec<BgOp>,
    sampler: Option<Sampler>,
    /// Seqlock epoch guarding every mutating entry point: odd while a
    /// mutation is in flight, even when the device state is quiescent.
    /// Concurrent [`ReadView`](crate::ReadView)s snapshot/validate it
    /// around lock-free copies of the page table, SRAM index and page
    /// payloads, so they only ever observe published states.
    epoch: SharedEpoch,
}

impl EnvyStore {
    /// Build a store from a configuration.
    ///
    /// # Errors
    ///
    /// [`EnvyError::BadConfig`] if the configuration is inconsistent.
    pub fn new(config: EnvyConfig) -> Result<EnvyStore, EnvyError> {
        let timing = TimingState::new(config.parallel_ops, config.resume_gap);
        let engine = Engine::new(config)?;
        Ok(EnvyStore {
            engine,
            timing,
            clock: Ns::ZERO,
            ops: Vec::new(),
            sampler: None,
            epoch: SharedEpoch::new(),
        })
    }

    /// Snapshot the store for an independent experiment run.
    ///
    /// The fork inherits the full device state — Flash contents and wear,
    /// buffered pages, page table, cleaning-policy state — but all
    /// statistics are reset, the simulated clock restarts at zero, and no
    /// background work is pending. A sweep that varies only workload
    /// parameters (arrival rate, seed, threshold) can therefore build,
    /// prefill and churn one baseline store and fork it per point.
    ///
    /// Forking with background operations still in flight (a timed run
    /// that was not drained) would silently drop that work, so the device
    /// state is snapshotted as-is; callers fork from an untimed or
    /// drained baseline.
    #[must_use]
    pub fn fork(&self) -> EnvyStore {
        let config = self.engine.config();
        EnvyStore {
            engine: self.engine.fork(),
            timing: TimingState::new(config.parallel_ops, config.resume_gap),
            clock: Ns::ZERO,
            ops: Vec::new(),
            sampler: None,
            // A fork has its own writer, so it gets a fresh epoch; views
            // of the original keep watching the original.
            epoch: SharedEpoch::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EnvyConfig {
        self.engine.config()
    }

    /// Resize the transaction slot table (see
    /// [`crate::EnvyConfig::txn_slots`]). Lets a fork of a shared
    /// baseline serve a different concurrency level without rebuilding
    /// and re-churning the device state.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or below the number of currently open
    /// transactions.
    pub fn set_txn_slots(&mut self, slots: u32) {
        self.engine.set_txn_slots(slots);
    }

    /// Controller statistics.
    pub fn stats(&self) -> &EnvyStats {
        self.engine.stats()
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Start recording controller trace events into a bounded ring of
    /// `capacity` records. Tracing is behavior-neutral: it changes no
    /// statistic, timing decision, or device state.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.engine.trace_mut().enable(capacity);
    }

    /// Stop tracing and drop all buffered records.
    pub fn disable_trace(&mut self) {
        self.engine.trace_mut().disable();
    }

    /// The controller trace ring (empty unless [`EnvyStore::enable_trace`]
    /// was called).
    pub fn trace(&self) -> &TraceRing {
        self.engine.trace()
    }

    /// Start periodic telemetry sampling: every `window` of simulated
    /// time, one row of [`SAMPLER_COLUMNS`] values is recorded, keeping
    /// at most `max_rows` recent rows. Samples are taken as timed
    /// accesses and [`EnvyStore::idle_until`] advance the clock.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `max_rows` is zero.
    pub fn enable_sampler(&mut self, window: Ns, max_rows: usize) {
        let stats = self.engine.stats();
        self.sampler = Some(Sampler {
            series: TimeSeries::new(window, SAMPLER_COLUMNS, max_rows),
            last_reads: stats.host_reads.get(),
            last_writes: stats.host_writes.get(),
            last_flushes: stats.pages_flushed.get(),
            last_cleans: stats.clean_programs.get(),
            last_erases: stats.erases.get(),
        });
    }

    /// The sampled time series (`None` unless
    /// [`EnvyStore::enable_sampler`] was called).
    pub fn time_series(&self) -> Option<&TimeSeries> {
        self.sampler.as_ref().map(|s| &s.series)
    }

    /// Record a sampler row if the current window has elapsed.
    #[inline]
    fn sample_if_due(&mut self) {
        let Some(sampler) = self.sampler.as_mut() else {
            return;
        };
        if !sampler.series.due(self.clock) {
            return;
        }
        let stats = &self.engine.stats;
        let reads = stats.host_reads.get();
        let writes = stats.host_writes.get();
        let flushes = stats.pages_flushed.get();
        let cleans = stats.clean_programs.get();
        let erases = stats.erases.get();
        let d_flush = flushes - sampler.last_flushes;
        let d_clean = cleans - sampler.last_cleans;
        // Per-window cleaning cost, same definition as the aggregate
        // [`crate::stats::EnvyStats::cleaning_cost`]: cleaner programs
        // per flushed page.
        let cost = if d_flush == 0 {
            0.0
        } else {
            d_clean as f64 / d_flush as f64
        };
        sampler.series.record(
            self.clock,
            vec![
                (reads - sampler.last_reads) as f64,
                (writes - sampler.last_writes) as f64,
                d_flush as f64,
                d_clean as f64,
                (erases - sampler.last_erases) as f64,
                cost,
                self.timing.backlog().as_nanos() as f64 / 1_000.0,
                self.engine.buffer.len() as f64,
            ],
        );
        sampler.last_reads = reads;
        sampler.last_writes = writes;
        sampler.last_flushes = flushes;
        sampler.last_cleans = cleans;
        sampler.last_erases = erases;
    }

    /// The underlying controller engine (wear reports, invariants, …).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the engine for advanced scenarios (interrupted
    /// cleans, direct policy inspection). Background time emitted by
    /// operations invoked this way is not replayed by the timing model.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Size of the logical array in bytes.
    pub fn size(&self) -> u64 {
        self.engine.config().logical_bytes()
    }

    /// Pre-populate the logical array at the configured utilization (the
    /// paper's steady-state starting point).
    ///
    /// # Errors
    ///
    /// See [`Engine::prefill`].
    pub fn prefill(&mut self) -> Result<(), EnvyError> {
        let _guard = self.epoch.write_guard();
        self.engine.prefill()
    }

    fn check_range(&self, addr: u64, len: usize) -> Result<(), EnvyError> {
        let size = self.size();
        if addr + len as u64 > size {
            return Err(EnvyError::OutOfBounds { addr, size });
        }
        Ok(())
    }

    #[inline]
    fn words_in(&self, len: usize) -> u32 {
        let w = self.engine.config().word_bytes as usize;
        // Word-or-smaller accesses (the vast majority of a word-level
        // workload) skip the division.
        if len <= w {
            1
        } else {
            (len.div_ceil(w)) as u32
        }
    }

    // ------------------------------------------------------------------
    // Untimed path
    // ------------------------------------------------------------------

    /// Read a byte range (untimed).
    ///
    /// # Errors
    ///
    /// [`EnvyError::OutOfBounds`] if the range exceeds the logical array.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EnvyError> {
        self.check_range(addr, buf.len())?;
        let mut cursor = 0;
        // ChunkIter copies the (plain-value) address map, so iterating
        // holds no borrow on the engine and needs no temporary Vec.
        for c in self.engine.addr_map.chunks(addr, buf.len()) {
            self.engine
                .read_page_bytes(c.page, c.offset, &mut buf[cursor..cursor + c.len])?;
            self.engine
                .stats
                .host_reads
                .add(self.words_in(c.len) as u64);
            cursor += c.len;
        }
        Ok(())
    }

    /// Write a byte range (untimed). Background work (flushes, cleans)
    /// executes logically but its device time is treated as instantaneous.
    ///
    /// # Errors
    ///
    /// [`EnvyError::OutOfBounds`], cleaning errors, or
    /// [`EnvyError::TxnConflict`] when the range hits an open
    /// transaction's write set.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), EnvyError> {
        self.write_as(addr, bytes, None)
    }

    /// Write a byte range (untimed) inside transaction `txn`: each
    /// touched page joins the transaction's write set (its pre-image is
    /// pinned as a shadow).
    ///
    /// # Errors
    ///
    /// As [`EnvyStore::write`], plus [`EnvyError::NoSuchTxn`] if `txn`
    /// is not open.
    pub fn txn_write(&mut self, txn: u64, addr: u64, bytes: &[u8]) -> Result<(), EnvyError> {
        self.write_as(addr, bytes, Some(txn))
    }

    fn write_as(&mut self, addr: u64, bytes: &[u8], writer: Option<u64>) -> Result<(), EnvyError> {
        self.check_range(addr, bytes.len())?;
        let _guard = self.epoch.write_guard();
        let mut cursor = 0;
        for c in self.engine.addr_map.chunks(addr, bytes.len()) {
            self.ops.clear();
            self.engine.write_page_bytes(
                c.page,
                c.offset,
                &bytes[cursor..cursor + c.len],
                writer,
                &mut self.ops,
            )?;
            self.engine
                .stats
                .host_writes
                .add(self.words_in(c.len) as u64);
            cursor += c.len;
        }
        self.ops.clear();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Timed path
    // ------------------------------------------------------------------

    /// Read a byte range with full timing: the access starts at `now` (or
    /// when the previous access completed, whichever is later) and is
    /// split into sequential host-bus word accesses.
    ///
    /// # Errors
    ///
    /// [`EnvyError::OutOfBounds`].
    #[inline]
    pub fn read_at(
        &mut self,
        now: Ns,
        addr: u64,
        buf: &mut [u8],
    ) -> Result<TimedAccess, EnvyError> {
        // Fast path for a word-or-smaller access inside one page — the
        // shape of every access a word-level workload issues. Identical
        // semantics to the general path with exactly one chunk and one
        // word; it only skips the chunk/word loop machinery. The general
        // path is outlined so this wrapper stays small enough to inline
        // into the workload driver's access loop.
        {
            let cfg = self.engine.config();
            let w = cfg.word_bytes as usize;
            let pb = self.engine.addr_map.page_bytes();
            let offset = self.engine.addr_map.offset_of(addr);
            if !buf.is_empty() && buf.len() <= w && offset as u64 + buf.len() as u64 <= pb {
                let (bus, suspend, flash_t) =
                    (cfg.bus_overhead, cfg.suspend_penalty, cfg.timings.read);
                let logical_pages = cfg.logical_pages;
                let size = cfg.logical_bytes();
                let lp = self.engine.addr_map.page_of(addr);
                if lp >= logical_pages {
                    return Err(EnvyError::OutOfBounds { addr, size });
                }
                let sram_t = Ns::from_nanos(100);
                let start = now.max(self.clock);
                self.engine.trace.set_now(start);
                let src = self.engine.read_page_bytes(lp, offset, buf)?;
                let (device_t, bank) = match src {
                    ReadSource::Sram => (sram_t, None),
                    ReadSource::Flash { bank } => (flash_t, Some(bank)),
                    ReadSource::Unmapped => (sram_t, None),
                };
                let miss = !self.engine.mmu.access(lp);
                let collided = self.timing.host_access(start, bank, &mut self.engine.stats);
                let mut lat = bus + device_t;
                if miss {
                    lat += sram_t; // page-table lookup in SRAM
                }
                if collided {
                    lat += suspend;
                    self.engine.trace.set_now(start);
                    self.engine.trace.emit(TraceEvent::Suspend {
                        bank: bank.expect("collisions require a bank"),
                    });
                }
                self.engine.stats.host_reads.incr();
                self.engine.stats.read_latency.record(lat);
                self.engine.stats.time_reads += lat;
                let t = start + lat;
                self.clock = t;
                self.sample_if_due();
                return Ok(TimedAccess {
                    completed: t,
                    latency: lat,
                    words: 1,
                });
            }
        }
        self.read_at_general(now, addr, buf)
    }

    /// The general multi-chunk timed read ([`EnvyStore::read_at`]'s
    /// fallback for accesses wider than a word or crossing a page).
    #[inline(never)]
    fn read_at_general(
        &mut self,
        now: Ns,
        addr: u64,
        buf: &mut [u8],
    ) -> Result<TimedAccess, EnvyError> {
        self.check_range(addr, buf.len())?;
        let start = now.max(self.clock);
        let mut t = start;
        let mut words_total = 0;
        let cfg = self.engine.config();
        let bus = cfg.bus_overhead;
        let suspend = cfg.suspend_penalty;
        let sram_t = Ns::from_nanos(100);
        let flash_t = cfg.timings.read;
        let mut cursor = 0;
        self.engine.trace.set_now(start);
        for c in self.engine.addr_map.chunks(addr, buf.len()) {
            let src =
                self.engine
                    .read_page_bytes(c.page, c.offset, &mut buf[cursor..cursor + c.len])?;
            cursor += c.len;
            let words = self.words_in(c.len);
            words_total += words;
            let (device_t, bank) = match src {
                ReadSource::Sram => (sram_t, None),
                ReadSource::Flash { bank } => (flash_t, Some(bank)),
                ReadSource::Unmapped => (sram_t, None),
            };
            for w in 0..words {
                // Only the first word of a page run can miss the MMU.
                let miss = w == 0 && !self.engine.mmu.access(c.page);
                let collided = self.timing.host_access(t, bank, &mut self.engine.stats);
                let mut lat = bus + device_t;
                if miss {
                    lat += sram_t; // page-table lookup in SRAM
                }
                if collided {
                    lat += suspend;
                    self.engine.trace.set_now(t);
                    self.engine.trace.emit(TraceEvent::Suspend {
                        bank: bank.expect("collisions require a bank"),
                    });
                }
                self.engine.stats.host_reads.incr();
                self.engine.stats.read_latency.record(lat);
                self.engine.stats.time_reads += lat;
                t += lat;
            }
        }
        self.clock = t;
        self.sample_if_due();
        Ok(TimedAccess {
            completed: t,
            latency: t - start,
            words: words_total,
        })
    }

    /// Write a byte range with full timing. The first word of each page
    /// run carries the copy-on-write transfer when one occurs; if the
    /// write buffer's un-executed flush backlog exceeds its headroom, the
    /// write stalls while the controller catches up — the paper's
    /// post-saturation latency jump (Figure 15).
    ///
    /// # Errors
    ///
    /// [`EnvyError::OutOfBounds`], cleaning errors, or
    /// [`EnvyError::TxnConflict`] when the range hits an open
    /// transaction's write set.
    #[inline]
    pub fn write_at(&mut self, now: Ns, addr: u64, bytes: &[u8]) -> Result<TimedAccess, EnvyError> {
        self.write_at_as(now, addr, bytes, None)
    }

    /// Write a byte range with full timing inside transaction `txn` —
    /// the timed counterpart of [`EnvyStore::txn_write`]. Timing is
    /// identical to [`EnvyStore::write_at`] for the same device state.
    ///
    /// # Errors
    ///
    /// As [`EnvyStore::write_at`], plus [`EnvyError::NoSuchTxn`] if
    /// `txn` is not open.
    #[inline]
    pub fn txn_write_at(
        &mut self,
        now: Ns,
        txn: u64,
        addr: u64,
        bytes: &[u8],
    ) -> Result<TimedAccess, EnvyError> {
        self.write_at_as(now, addr, bytes, Some(txn))
    }

    #[inline]
    fn write_at_as(
        &mut self,
        now: Ns,
        addr: u64,
        bytes: &[u8],
        writer: Option<u64>,
    ) -> Result<TimedAccess, EnvyError> {
        let _guard = self.epoch.write_guard();
        // Fast path mirroring `read_at`'s: one chunk, one word, identical
        // semantics to the outlined general loop.
        {
            let cfg = self.engine.config();
            let w = cfg.word_bytes as usize;
            let pb = self.engine.addr_map.page_bytes();
            let offset = self.engine.addr_map.offset_of(addr);
            if !bytes.is_empty() && bytes.len() <= w && offset as u64 + bytes.len() as u64 <= pb {
                let (bus, suspend, flash_t) =
                    (cfg.bus_overhead, cfg.suspend_penalty, cfg.timings.read);
                let headroom = cfg.buffer_pages - cfg.flush_threshold;
                let logical_pages = cfg.logical_pages;
                let size = cfg.logical_bytes();
                let lp = self.engine.addr_map.page_of(addr);
                if lp >= logical_pages {
                    return Err(EnvyError::OutOfBounds { addr, size });
                }
                let sram_t = Ns::from_nanos(100);
                let start = now.max(self.clock);
                self.engine.trace.set_now(start);
                let mut stall = Ns::ZERO;
                if self.timing.pending_flushes() >= headroom {
                    stall = self
                        .timing
                        .drain_flushes(headroom - 1, &mut self.engine.stats);
                    if stall > Ns::ZERO {
                        self.engine.trace.set_now(start);
                        self.engine.trace.emit(TraceEvent::Stall { waited: stall });
                    }
                }
                self.ops.clear();
                let result =
                    self.engine
                        .write_page_bytes(lp, offset, bytes, writer, &mut self.ops)?;
                self.timing.enqueue(&self.ops);
                self.ops.clear();
                let bank = match result.kind {
                    WriteKind::CopyOnWrite { bank } => Some(bank),
                    _ => None,
                };
                let miss = !self.engine.mmu.access(lp);
                let collided = self.timing.host_access(start, bank, &mut self.engine.stats);
                let mut lat = bus + sram_t;
                if miss {
                    lat += sram_t;
                }
                if bank.is_some() {
                    lat += flash_t; // wide-bus Flash→SRAM page transfer
                }
                lat += stall;
                if collided {
                    lat += suspend;
                    self.engine.trace.set_now(start);
                    self.engine.trace.emit(TraceEvent::Suspend {
                        bank: bank.expect("collisions require a bank"),
                    });
                }
                self.engine.stats.host_writes.incr();
                self.engine.stats.write_latency.record(lat);
                self.engine.stats.time_writes += lat.saturating_sub(stall);
                let t = start + lat;
                self.clock = t;
                self.sample_if_due();
                return Ok(TimedAccess {
                    completed: t,
                    latency: lat,
                    words: 1,
                });
            }
        }
        self.write_at_general(now, addr, bytes, writer)
    }

    /// The general multi-chunk timed write ([`EnvyStore::write_at`]'s
    /// fallback for accesses wider than a word or crossing a page).
    #[inline(never)]
    fn write_at_general(
        &mut self,
        now: Ns,
        addr: u64,
        bytes: &[u8],
        writer: Option<u64>,
    ) -> Result<TimedAccess, EnvyError> {
        self.check_range(addr, bytes.len())?;
        let start = now.max(self.clock);
        let mut t = start;
        let mut words_total = 0;
        let cfg = self.engine.config();
        let bus = cfg.bus_overhead;
        let suspend = cfg.suspend_penalty;
        let headroom = cfg.buffer_pages - cfg.flush_threshold;
        let sram_t = Ns::from_nanos(100);
        let flash_t = cfg.timings.read;
        let mut cursor = 0;
        self.engine.trace.set_now(start);
        for c in self.engine.addr_map.chunks(addr, bytes.len()) {
            // Buffer-full condition: pages logically flushed but whose
            // program time has not executed still occupy (virtual) frames.
            // Post-saturation (Figure 15): the blocked write waits for
            // exactly one buffer slot — one flush program plus its
            // amortized share of the cleaning and erasing queued ahead.
            let mut stall = Ns::ZERO;
            if self.timing.pending_flushes() >= headroom {
                stall = self
                    .timing
                    .drain_flushes(headroom - 1, &mut self.engine.stats);
                if stall > Ns::ZERO {
                    self.engine.trace.set_now(t);
                    self.engine.trace.emit(TraceEvent::Stall { waited: stall });
                }
            }
            self.ops.clear();
            let result = self.engine.write_page_bytes(
                c.page,
                c.offset,
                &bytes[cursor..cursor + c.len],
                writer,
                &mut self.ops,
            )?;
            self.timing.enqueue(&self.ops);
            self.ops.clear();
            cursor += c.len;
            let words = self.words_in(c.len);
            words_total += words;
            let cow_bank = match result.kind {
                WriteKind::CopyOnWrite { bank } => Some(bank),
                _ => None,
            };
            for w in 0..words {
                let miss = w == 0 && !self.engine.mmu.access(c.page);
                // The COW transfer happens on the first word and touches
                // the source bank.
                let bank = if w == 0 { cow_bank } else { None };
                let collided = self.timing.host_access(t, bank, &mut self.engine.stats);
                let mut lat = bus + sram_t;
                if miss {
                    lat += sram_t;
                }
                if w == 0 {
                    if bank.is_some() {
                        lat += flash_t; // wide-bus Flash→SRAM page transfer
                    }
                    lat += stall;
                }
                if collided {
                    lat += suspend;
                    self.engine.trace.set_now(t);
                    self.engine.trace.emit(TraceEvent::Suspend {
                        bank: bank.expect("collisions require a bank"),
                    });
                }
                self.engine.stats.host_writes.incr();
                self.engine.stats.write_latency.record(lat);
                // The drain stall's interval was already attributed to
                // the executed background work; charge only the
                // host-productive part here.
                self.engine.stats.time_writes +=
                    lat.saturating_sub(if w == 0 { stall } else { Ns::ZERO });
                t += lat;
            }
        }
        self.clock = t;
        self.sample_if_due();
        Ok(TimedAccess {
            completed: t,
            latency: t - start,
            words: words_total,
        })
    }

    /// Let background work execute up to `now` without a host access
    /// (e.g. between transactions).
    pub fn idle_until(&mut self, now: Ns) {
        self.clock = self.clock.max(now);
        self.timing.run_until(now, &mut self.engine.stats);
        self.engine.trace.set_now(self.clock);
        self.sample_if_due();
    }

    /// The store's internal clock (completion time of the latest access).
    pub fn now(&self) -> Ns {
        self.clock
    }

    /// Un-executed background device time.
    pub fn backlog(&self) -> Ns {
        self.timing.backlog()
    }

    // ------------------------------------------------------------------
    // Transactions, recovery, maintenance
    // ------------------------------------------------------------------

    /// Open a hardware transaction (§6). See [`Engine::txn_begin`].
    ///
    /// # Errors
    ///
    /// See [`Engine::txn_begin`].
    pub fn txn_begin(&mut self) -> Result<u64, EnvyError> {
        let _guard = self.epoch.write_guard();
        self.ops.clear();
        let mut ops = std::mem::take(&mut self.ops);
        let id = self.engine.txn_begin(&mut ops);
        ops.clear();
        self.ops = ops;
        id
    }

    /// Partition the transaction-id space for multi-controller
    /// deployments. See [`Engine::seed_txn_ids`].
    ///
    /// # Panics
    ///
    /// See [`Engine::seed_txn_ids`].
    pub fn seed_txn_ids(&mut self, first: u64, stride: u64) {
        let _guard = self.epoch.write_guard();
        self.engine.seed_txn_ids(first, stride);
    }

    /// Commit a transaction.
    ///
    /// # Errors
    ///
    /// See [`Engine::txn_commit`].
    pub fn txn_commit(&mut self, txn: u64) -> Result<(), EnvyError> {
        let _guard = self.epoch.write_guard();
        self.engine.txn_commit(txn)
    }

    /// Roll a transaction back to its shadow copies.
    ///
    /// # Errors
    ///
    /// See [`Engine::txn_abort`].
    pub fn txn_abort(&mut self, txn: u64) -> Result<(), EnvyError> {
        let _guard = self.epoch.write_guard();
        self.engine.txn_abort(txn)
    }

    /// Drain the write buffer to Flash.
    ///
    /// # Errors
    ///
    /// Propagates cleaning errors.
    pub fn flush_all(&mut self) -> Result<(), EnvyError> {
        let _guard = self.epoch.write_guard();
        self.ops.clear();
        let mut ops = std::mem::take(&mut self.ops);
        let r = self.engine.flush_all(&mut ops);
        ops.clear();
        self.ops = ops;
        r
    }

    /// Simulate a power failure (volatile state lost).
    ///
    /// Besides the engine's volatile state (MMU cache, copy scratch),
    /// the store drops its own: queued-but-unexecuted background
    /// operations and the in-flight timing of the devices. The simulated
    /// clock is kept — it models wall time, which a power cut does not
    /// rewind.
    pub fn power_failure(&mut self) {
        let _guard = self.epoch.write_guard();
        self.engine.power_failure();
        self.ops.clear();
        let config = self.engine.config();
        self.timing = TimingState::new(config.parallel_ops, config.resume_gap);
    }

    /// Arm a deterministic [`FaultPlan`] on the underlying engine
    /// (power-failure injection points, program/erase verify failures,
    /// torn programs). An empty plan disarms everything.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.engine.arm_faults(plan);
    }

    /// Recover after a power failure.
    ///
    /// # Errors
    ///
    /// See [`Engine::recover`].
    pub fn recover(&mut self) -> Result<RecoveryReport, EnvyError> {
        let _guard = self.epoch.write_guard();
        self.ops.clear();
        let mut ops = std::mem::take(&mut self.ops);
        let r = self.engine.recover(&mut ops);
        ops.clear();
        self.ops = ops;
        r
    }

    /// A lock-free reader handle over this store's live state.
    ///
    /// The view (and its clones) can be moved to other threads and read
    /// concurrently with this store's mutating operations: every mutating
    /// entry point brackets itself in the store's seqlock epoch, and the
    /// view retries any copy that overlaps a mutation. See
    /// [`ReadView`](crate::ReadView) and `docs/CONCURRENCY.md`.
    ///
    /// Direct mutation through [`engine_mut`](Self::engine_mut) bypasses
    /// the epoch; do not combine it with live views on other threads.
    pub fn read_view(&self) -> crate::view::ReadView {
        crate::view::ReadView::new(&self.engine, &self.epoch)
    }

    /// Verify all cross-structure invariants (test support).
    ///
    /// # Errors
    ///
    /// A description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.engine.check_invariants()
    }
}

impl Memory for EnvyStore {
    fn size(&self) -> u64 {
        EnvyStore::size(self)
    }

    fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EnvyError> {
        EnvyStore::read(self, addr, buf)
    }

    fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), EnvyError> {
        EnvyStore::write(self, addr, bytes)
    }
}

/// A [`Memory`] view that routes every write through an open
/// transaction's write set ([`EnvyStore::txn_write`]).
///
/// Plain writes never join an open transaction (they are refused with
/// [`EnvyError::TxnConflict`] if they hit a page a transaction owns),
/// so [`Memory`]-generic structures — the heap allocator, the B-Tree,
/// the functional TPC-A database — opt into transactional semantics by
/// running against this view instead of the bare store. Reads pass
/// straight through: transactional writes land in place (the shadow
/// directory holds the pre-images), so the transaction observes its own
/// in-flight data.
#[derive(Debug)]
pub struct TxnMemory<'a> {
    store: &'a mut EnvyStore,
    txn: u64,
}

impl<'a> TxnMemory<'a> {
    /// Wrap `store` so writes execute under the open transaction `txn`
    /// (from [`EnvyStore::txn_begin`]). The borrow ends when the view is
    /// dropped; commit or abort the transaction on the store itself.
    pub fn new(store: &'a mut EnvyStore, txn: u64) -> TxnMemory<'a> {
        TxnMemory { store, txn }
    }

    /// The wrapped transaction id.
    pub fn txn(&self) -> u64 {
        self.txn
    }
}

impl Memory for TxnMemory<'_> {
    fn size(&self) -> u64 {
        self.store.size()
    }

    fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EnvyError> {
        self.store.read(addr, buf)
    }

    fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), EnvyError> {
        self.store.txn_write(self.txn, addr, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;

    fn store() -> EnvyStore {
        let mut s = EnvyStore::new(EnvyConfig::small_test()).unwrap();
        s.prefill().unwrap();
        s
    }

    /// Send-safety audit for the sharded serving layer: a store (and its
    /// fork) must be movable into a worker thread. Every constituent is
    /// owned data — no `Rc`, no raw pointers, no thread-affine interior
    /// mutability — so this is a compile-time fact; the assertion keeps
    /// it from regressing silently.
    #[test]
    fn envy_store_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<EnvyStore>();
        assert_send::<Engine>();
        assert_send::<EnvyStats>();
        assert_send::<TraceRing>();
        let s = store();
        let forked = s.fork();
        std::thread::spawn(move || drop(forked)).join().unwrap();
    }

    #[test]
    fn byte_range_roundtrip_across_pages() {
        let mut s = store();
        let data: Vec<u8> = (0..1000).map(|i| (i * 7) as u8).collect();
        s.write(100, &data).unwrap(); // spans 4+ 256-byte pages
        let mut out = vec![0u8; 1000];
        s.read(100, &mut out).unwrap();
        assert_eq!(out, data);
        s.check_invariants().unwrap();
    }

    #[test]
    fn out_of_bounds_ranges_rejected() {
        let mut s = store();
        let size = s.size();
        assert!(s.write(size - 2, &[0u8; 4]).is_err());
        let mut buf = [0u8; 4];
        assert!(s.read(size, &mut buf).is_err());
        // Exactly at the end is fine.
        s.write(size - 4, &[1, 2, 3, 4]).unwrap();
    }

    #[test]
    fn memory_trait_object() {
        let mut s = store();
        let mem: &mut dyn Memory = &mut s;
        mem.write(0, b"abc").unwrap();
        let mut out = [0u8; 3];
        mem.read(0, &mut out).unwrap();
        assert_eq!(&out, b"abc");
    }

    #[test]
    fn timed_read_latency_near_paper_values() {
        let mut s = store();
        // Flash-resident page, cold MMU: 60 + 100 (PT) + 100 (flash).
        let mut b = [0u8; 4];
        let a = s.read_at(Ns::from_micros(1), 0, &mut b).unwrap();
        assert_eq!(a.words, 1);
        assert_eq!(a.latency, Ns::from_nanos(260));
        // Warm MMU: 60 + 100.
        let a2 = s.read_at(a.completed, 0, &mut b).unwrap();
        assert_eq!(a2.latency, Ns::from_nanos(160));
    }

    #[test]
    fn timed_write_cow_then_sram_hits() {
        let mut s = store();
        // First write: COW (60 + 100 transfer + 100 sram + 100 PT miss).
        let a = s.write_at(Ns::from_micros(1), 0, &[1, 2, 3, 4]).unwrap();
        assert_eq!(a.words, 1);
        assert_eq!(a.latency, Ns::from_nanos(360));
        // Second write to the same page: SRAM hit, warm MMU: 160ns.
        let a2 = s.write_at(a.completed, 4, &[5, 6, 7, 8]).unwrap();
        assert_eq!(a2.latency, Ns::from_nanos(160));
    }

    #[test]
    fn timed_multi_word_access_sums_words() {
        let mut s = store();
        let mut buf = [0u8; 64];
        let a = s.read_at(Ns::ZERO, 0, &mut buf).unwrap();
        assert_eq!(a.words, 16); // 64 bytes / 4-byte words
                                 // 1 cold + 15 warm words.
        assert_eq!(a.latency, Ns::from_nanos(260 + 15 * 160));
    }

    #[test]
    fn clock_is_monotonic_even_with_stale_now() {
        let mut s = store();
        let mut b = [0u8; 4];
        let a1 = s.read_at(Ns::from_micros(100), 0, &mut b).unwrap();
        // An "earlier" arrival cannot start before the previous completion.
        let a2 = s.read_at(Ns::ZERO, 256, &mut b).unwrap();
        assert!(a2.completed > a1.completed);
        assert_eq!(s.now(), a2.completed);
    }

    #[test]
    fn background_backlog_drains_when_idle() {
        let mut s = store();
        // Generate flush work by writing more pages than the threshold.
        let threshold = s.config().flush_threshold as u64;
        let mut t = Ns::ZERO;
        for lp in 0..(threshold + 8) {
            let a = s.write_at(t, lp * 256, &[1]).unwrap();
            t = a.completed;
        }
        assert!(s.backlog() > Ns::ZERO, "flushes must be pending");
        s.idle_until(t + Ns::from_secs(1));
        assert_eq!(s.backlog(), Ns::ZERO);
        assert!(s.stats().time_flush > Ns::ZERO);
    }

    #[test]
    fn saturation_spikes_write_latency() {
        // Hammer writes back-to-back with no idle time: the flush backlog
        // exceeds the buffer headroom and writes stall (Figure 15).
        let config = EnvyConfig::small_test().with_buffer_pages(16);
        let mut s = EnvyStore::new(config).unwrap();
        s.prefill().unwrap();
        let mut t = Ns::ZERO;
        let mut worst = Ns::ZERO;
        let pages = s.config().logical_pages;
        for i in 0..2_000u64 {
            let lp = (i * 7) % pages;
            let a = s.write_at(t, lp * 256, &[1]).unwrap();
            t = a.completed;
            worst = worst.max(a.latency);
        }
        assert!(
            worst >= Ns::from_micros(4),
            "saturated write latency should reach program time, got {worst}"
        );
        assert!(s.stats().suspensions.get() < s.stats().host_writes.get());
    }

    #[test]
    fn txn_api_through_store() {
        let mut s = store();
        s.write(512, &[7; 16]).unwrap();
        let txn = s.txn_begin().unwrap();
        s.txn_write(txn, 512, &[9; 16]).unwrap();
        // A plain write to the page in the open write set is refused —
        // never silently joined to the transaction.
        assert!(matches!(
            s.write(512, &[8; 16]),
            Err(EnvyError::TxnConflict { .. })
        ));
        s.txn_abort(txn).unwrap();
        let mut out = [0u8; 16];
        s.read(512, &mut out).unwrap();
        assert_eq!(out, [7; 16]);

        let txn = s.txn_begin().unwrap();
        s.txn_write(txn, 512, &[1; 16]).unwrap();
        s.txn_commit(txn).unwrap();
        s.read(512, &mut out).unwrap();
        assert_eq!(out, [1; 16]);
    }

    #[test]
    fn seeded_txn_ids_stride_and_stay_unique() {
        let mut s = store();
        s.seed_txn_ids(2, 4);
        let a = s.txn_begin().unwrap();
        s.txn_commit(a).unwrap();
        let b = s.txn_begin().unwrap();
        // An id from a different residue class is never this store's
        // transaction, even while one is open.
        assert!(matches!(
            s.txn_commit(b + 1),
            Err(EnvyError::NoSuchTxn { .. })
        ));
        s.txn_abort(b).unwrap();
        assert_eq!((a, b), (2, 6));
    }

    #[test]
    fn recovery_through_store() {
        let mut s = store();
        s.write(0, &[0xEE; 8]).unwrap();
        s.power_failure();
        let report = s.recover().unwrap();
        assert!(!report.resumed_clean);
        let mut out = [0u8; 8];
        s.read(0, &mut out).unwrap();
        assert_eq!(out, [0xEE; 8]);
    }

    #[test]
    fn power_failure_drops_pending_background_work() {
        let mut s = store();
        // Rapid timed writes queue background device time (flushes,
        // cleans) faster than it executes.
        let mut now = Ns::ZERO;
        let mut i = 0u64;
        while s.backlog() == Ns::ZERO && i < 50_000 {
            let a = s
                .write_at(now, (i * 256) % (s.size() - 256), &[i as u8; 4])
                .unwrap();
            now = a.completed;
            i += 1;
        }
        assert!(s.backlog() > Ns::ZERO, "no backlog after {i} writes");
        s.power_failure();
        // In-flight device work is volatile; the clock (wall time) is not.
        assert_eq!(s.backlog(), Ns::ZERO);
        assert_eq!(s.now(), now);
        s.recover().unwrap();
        s.check_invariants().unwrap();
    }

    #[test]
    fn faults_armable_through_store() {
        let mut s = store();
        s.write(0, &[0x42; 4]).unwrap();
        s.arm_faults(FaultPlan::crash_at(
            crate::engine::InjectionPoint::FlushAfterProgram,
            1,
        ));
        match s.flush_all() {
            Err(EnvyError::PowerLoss) => {}
            other => panic!("expected PowerLoss, got {other:?}"),
        }
        s.power_failure();
        let report = s.recover().unwrap();
        assert_eq!(report.scavenged_pages, 1);
        let mut out = [0u8; 4];
        s.read(0, &mut out).unwrap();
        assert_eq!(out, [0x42; 4]);
    }

    #[test]
    fn stats_accessible_and_consistent() {
        let mut s = store();
        s.write(0, &[1; 4]).unwrap();
        let mut b = [0u8; 4];
        s.read(0, &mut b).unwrap();
        assert_eq!(s.stats().host_writes.get(), 1);
        assert_eq!(s.stats().host_reads.get(), 1);
        assert_eq!(s.stats().cow_ops.get(), 1);
    }

    #[test]
    fn tracing_is_behavior_neutral_and_captures_events() {
        // Identical workloads with and without tracing: every statistic
        // must match (tracing observes, never perturbs), and the traced
        // run must have captured the controller's transitions.
        let run = |traced: bool| {
            let mut s = store();
            if traced {
                s.enable_trace(4096);
            }
            let pages = s.config().logical_pages;
            let mut t = Ns::ZERO;
            for i in 0..3_000u64 {
                let lp = (i * 13) % pages;
                let a = s.write_at(t, lp * 256, &[i as u8]).unwrap();
                t = a.completed;
            }
            s
        };
        let plain = run(false);
        let traced = run(true);
        assert_eq!(plain.stats(), traced.stats());
        assert_eq!(plain.now(), traced.now());
        assert!(plain.trace().is_empty());
        assert!(!traced.trace().is_empty());
        let evs: Vec<_> = traced.trace().records().map(|r| r.event).collect();
        assert!(evs.iter().any(|e| matches!(e, TraceEvent::Flush { .. })));
        assert!(evs
            .iter()
            .any(|e| matches!(e, TraceEvent::CleanStart { .. })));
        // Timestamps are monotone.
        let times: Vec<_> = traced.trace().records().map(|r| r.at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sampler_records_per_window_rows() {
        let mut s = store();
        s.enable_sampler(Ns::from_micros(100), 64);
        let pages = s.config().logical_pages;
        let mut t = Ns::ZERO;
        for i in 0..2_000u64 {
            let lp = (i * 7) % pages;
            let a = s.write_at(t, lp * 256, &[1]).unwrap();
            t = a.completed;
        }
        s.idle_until(t + Ns::from_millis(1));
        let series = s.time_series().expect("sampler enabled");
        assert_eq!(series.columns(), SAMPLER_COLUMNS);
        assert!(series.rows().len() >= 2, "windows elapsed");
        // Host write deltas across rows cannot exceed the total.
        let writes_col = 1;
        let total: f64 = series.rows().iter().map(|(_, v)| v[writes_col]).sum();
        assert!(total <= s.stats().host_writes.get() as f64);
        assert!(total > 0.0);
    }

    #[test]
    fn greedy_policy_via_store_heavy_churn() {
        let config = EnvyConfig::small_test().with_policy(PolicyKind::Greedy);
        let mut s = EnvyStore::new(config).unwrap();
        s.prefill().unwrap();
        let pages = s.config().logical_pages;
        for i in 0..20_000u64 {
            let lp = (i * 31) % pages;
            s.write(lp * 256 + (i % 64), &[i as u8]).unwrap();
        }
        assert!(s.stats().cleaning_cost() > 0.0);
        s.check_invariants().unwrap();
    }
}
