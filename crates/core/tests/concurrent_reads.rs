//! Concurrent read-path stress: reader threads hammer [`ReadView`]s
//! while the single writer drives flushes, cleans and wear-leveling
//! relocations underneath them.
//!
//! Every write fills a whole logical page with one byte value, so any
//! consistent snapshot of a page is uniform (or erased 0xFF). A torn
//! read — half old page, half new, or a page caught mid-relocation —
//! shows up as a mixed page and fails the assertion. Seeded, so a
//! failure reproduces.

use envy_core::{EnvyConfig, EnvyStore};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// xorshift64*: deterministic per-thread stream.
fn next(seed: &mut u64) -> u64 {
    let mut x = *seed;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *seed = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

#[test]
fn readers_never_observe_torn_pages() {
    let config = EnvyConfig::small_test();
    let mut store = EnvyStore::new(config).unwrap();
    let pb = store.config().geometry.page_bytes() as usize;
    let pages = store.config().logical_pages;
    let view = store.read_view();

    let done = Arc::new(AtomicBool::new(false));
    let retries = Arc::new(AtomicU64::new(0));
    let reads = Arc::new(AtomicU64::new(0));

    let mut readers = Vec::new();
    for tid in 0..2u64 {
        let view = view.clone();
        let done = Arc::clone(&done);
        let retries = Arc::clone(&retries);
        let reads = Arc::clone(&reads);
        readers.push(std::thread::spawn(move || {
            let mut seed = 0x9E37_79B9_7F4A_7C15 ^ (tid + 1);
            let mut buf = vec![0u8; pb];
            while !done.load(Ordering::Relaxed) {
                let lp = next(&mut seed) % pages;
                let r = view.read(lp * pb as u64, &mut buf).unwrap();
                retries.fetch_add(r, Ordering::Relaxed);
                let first = buf[0];
                assert!(
                    buf.iter().all(|&b| b == first),
                    "torn page {lp}: starts {first:#04x}, mixed bytes follow"
                );
                reads.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Writer: whole-page uniform writes over the full logical range —
    // enough churn to force flushing, cleaning and wear relocations
    // while the readers spin.
    let mut seed = 0xDEAD_BEEF_CAFE_F00D;
    let page = vec![0u8; pb];
    let mut page = page;
    for i in 0..6_000u64 {
        let lp = next(&mut seed) % pages;
        page.fill((next(&mut seed) & 0x7F) as u8);
        store.write(lp * pb as u64, &page).unwrap();
        if i % 1024 == 1023 {
            store.flush_all().unwrap();
        }
    }
    // On a one-CPU host the loop above can finish before the reader
    // threads are first scheduled; keep churning (and yielding) until
    // they have demonstrably read under live mutation.
    while reads.load(Ordering::Relaxed) < 1_000 {
        if readers.iter().any(|r| r.is_finished()) {
            break; // a reader panicked; the joins below surface it
        }
        let lp = next(&mut seed) % pages;
        page.fill((next(&mut seed) & 0x7F) as u8);
        store.write(lp * pb as u64, &page).unwrap();
        std::thread::yield_now();
    }
    done.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    store.check_invariants().unwrap();
    assert!(
        store.stats().cleans.get() > 0,
        "stress must exercise cleaning under the readers"
    );
    assert!(reads.load(Ordering::Relaxed) > 0, "readers made progress");
    // Retries are timing-dependent; just surface them.
    eprintln!(
        "concurrent stress: {} reads, {} retries, {} cleans",
        reads.load(Ordering::Relaxed),
        retries.load(Ordering::Relaxed),
        store.stats().cleans.get()
    );
}

/// The epoch must also cover transactions and recovery: readers keep
/// validating while the writer aborts/commits and power-cycles.
#[test]
fn readers_survive_txn_and_recovery_storm() {
    let mut store = EnvyStore::new(EnvyConfig::small_test()).unwrap();
    let pb = store.config().geometry.page_bytes() as usize;
    let pages = store.config().logical_pages;
    let view = store.read_view();
    let done = Arc::new(AtomicBool::new(false));

    let reader = {
        let view = view.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut seed = 42u64;
            let mut buf = vec![0u8; pb];
            while !done.load(Ordering::Relaxed) {
                let lp = next(&mut seed) % pages;
                view.read(lp * pb as u64, &mut buf).unwrap();
                let first = buf[0];
                assert!(buf.iter().all(|&b| b == first), "torn page {lp}");
            }
        })
    };

    let mut seed = 7u64;
    let mut page = vec![0u8; pb];
    for round in 0..40u64 {
        let txn = store.txn_begin().unwrap();
        for _ in 0..32 {
            let lp = next(&mut seed) % pages;
            page.fill((next(&mut seed) & 0x7F) as u8);
            store.write(lp * pb as u64, &page).unwrap();
        }
        if round % 2 == 0 {
            store.txn_commit(txn).unwrap();
        } else {
            store.txn_abort(txn).unwrap();
        }
        if round % 8 == 7 {
            store.power_failure();
            store.recover().unwrap();
        }
    }
    done.store(true, Ordering::Relaxed);
    reader.join().unwrap();
    store.check_invariants().unwrap();
}
