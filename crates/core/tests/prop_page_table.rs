//! Randomized test: the page table's forward and reverse maps stay
//! mutually consistent under arbitrary map/unmap sequences.

use envy_core::addr::{FlashLocation, Location};
use envy_core::page_table::PageTable;
use envy_flash::FlashGeometry;
use envy_sim::check::{cases, Gen};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    MapFlash { lp: u64, seg: u32, page: u32 },
    MapSram { lp: u64 },
    Unmap { lp: u64 },
}

const LPS: u64 = 32;
const SEGS: u32 = 4;
const PPS: u32 = 8;

fn gen_op(g: &mut Gen) -> Op {
    match g.below(3) {
        0 => Op::MapFlash {
            lp: g.below(LPS),
            seg: g.below(SEGS as u64) as u32,
            page: g.below(PPS as u64) as u32,
        },
        1 => Op::MapSram { lp: g.below(LPS) },
        _ => Op::Unmap { lp: g.below(LPS) },
    }
}

#[test]
fn forward_reverse_consistent() {
    cases(0x9A6E_7AB1, 256, |g| {
        let ops = g.vec_of(1, 150, gen_op);
        let geo = FlashGeometry::new(2, SEGS, PPS, 16).unwrap();
        let mut pt = PageTable::new(LPS, &geo);
        // Model: lp -> location, plus reverse occupancy.
        let mut fwd: HashMap<u64, Option<FlashLocation>> = HashMap::new();
        let mut occupied: HashMap<(u32, u32), u64> = HashMap::new();

        for op in ops {
            match op {
                Op::MapFlash { lp, seg, page } => {
                    // Skip mappings that would double-book a physical page
                    // (the controller never does this; the table asserts).
                    if occupied.get(&(seg, page)).is_some_and(|&o| o != lp) {
                        continue;
                    }
                    if let Some(Some(old)) = fwd.get(&lp) {
                        occupied.remove(&(old.segment, old.page));
                    }
                    pt.map_flash(lp, FlashLocation { segment: seg, page });
                    fwd.insert(lp, Some(FlashLocation { segment: seg, page }));
                    occupied.insert((seg, page), lp);
                }
                Op::MapSram { lp } => {
                    if let Some(Some(old)) = fwd.get(&lp) {
                        occupied.remove(&(old.segment, old.page));
                    }
                    pt.map_sram(lp);
                    fwd.insert(lp, None);
                }
                Op::Unmap { lp } => {
                    if let Some(Some(old)) = fwd.get(&lp) {
                        occupied.remove(&(old.segment, old.page));
                    }
                    pt.unmap(lp);
                    fwd.remove(&lp);
                }
            }
            pt.check_consistency().unwrap();
        }

        // Final cross-check against the model.
        for lp in 0..LPS {
            match fwd.get(&lp) {
                Some(Some(loc)) => {
                    assert_eq!(pt.lookup(lp), Location::Flash(*loc));
                    assert_eq!(pt.logical_at(*loc), Some(lp));
                }
                Some(None) => assert_eq!(pt.lookup(lp), Location::Sram),
                None => assert_eq!(pt.lookup(lp), Location::Unmapped),
            }
        }
        for seg in 0..SEGS {
            let count = occupied.keys().filter(|(s, _)| *s == seg).count() as u32;
            assert_eq!(pt.resident_count(seg), count);
        }
    });
}
