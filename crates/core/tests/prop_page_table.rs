//! Property test: the page table's forward and reverse maps stay
//! mutually consistent under arbitrary map/unmap sequences.

use envy_core::addr::{FlashLocation, Location};
use envy_core::page_table::PageTable;
use envy_flash::FlashGeometry;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    MapFlash { lp: u64, seg: u32, page: u32 },
    MapSram { lp: u64 },
    Unmap { lp: u64 },
}

const LPS: u64 = 32;
const SEGS: u32 = 4;
const PPS: u32 = 8;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..LPS, 0..SEGS, 0..PPS).prop_map(|(lp, seg, page)| Op::MapFlash { lp, seg, page }),
        (0..LPS).prop_map(|lp| Op::MapSram { lp }),
        (0..LPS).prop_map(|lp| Op::Unmap { lp }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn forward_reverse_consistent(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let geo = FlashGeometry::new(2, SEGS, PPS, 16).unwrap();
        let mut pt = PageTable::new(LPS, &geo);
        // Model: lp -> location, plus reverse occupancy.
        let mut fwd: HashMap<u64, Option<FlashLocation>> = HashMap::new();
        let mut occupied: HashMap<(u32, u32), u64> = HashMap::new();

        for op in ops {
            match op {
                Op::MapFlash { lp, seg, page } => {
                    // Skip mappings that would double-book a physical page
                    // (the controller never does this; the table asserts).
                    if occupied.get(&(seg, page)).is_some_and(|&o| o != lp) {
                        continue;
                    }
                    if let Some(Some(old)) = fwd.get(&lp) {
                        occupied.remove(&(old.segment, old.page));
                    }
                    pt.map_flash(lp, FlashLocation { segment: seg, page });
                    fwd.insert(lp, Some(FlashLocation { segment: seg, page }));
                    occupied.insert((seg, page), lp);
                }
                Op::MapSram { lp } => {
                    if let Some(Some(old)) = fwd.get(&lp) {
                        occupied.remove(&(old.segment, old.page));
                    }
                    pt.map_sram(lp);
                    fwd.insert(lp, None);
                }
                Op::Unmap { lp } => {
                    if let Some(Some(old)) = fwd.get(&lp) {
                        occupied.remove(&(old.segment, old.page));
                    }
                    pt.unmap(lp);
                    fwd.remove(&lp);
                }
            }
            pt.check_consistency().unwrap();
        }

        // Final cross-check against the model.
        for lp in 0..LPS {
            match fwd.get(&lp) {
                Some(Some(loc)) => {
                    prop_assert_eq!(pt.lookup(lp), Location::Flash(*loc));
                    prop_assert_eq!(pt.logical_at(*loc), Some(lp));
                }
                Some(None) => prop_assert_eq!(pt.lookup(lp), Location::Sram),
                None => prop_assert_eq!(pt.lookup(lp), Location::Unmapped),
            }
        }
        for seg in 0..SEGS {
            let count = occupied.keys().filter(|(s, _)| *s == seg).count() as u32;
            prop_assert_eq!(pt.resident_count(seg), count);
        }
    }
}
