//! Randomized crash-consistency checker.
//!
//! Each case drives an [`EnvyStore`] with a random mix of page writes
//! and transactions while a randomly chosen [`FaultPlan`] is armed: a
//! power failure at a random injection point and hit count, plus random
//! program/erase verify failures and a random torn-program width. When
//! the crash fires the case power-fails the store, recovers, and checks
//! the recovery contract:
//!
//! * recovery succeeds and every structural invariant holds;
//! * **no acknowledged write is lost** — every page whose write (or
//!   transaction commit) returned `Ok` reads back its last value;
//! * **no unacknowledged write is half-visible** — the single in-flight
//!   write is either fully old or fully new (pages are written with a
//!   uniform byte, so a torn page would read back mixed bytes), and an
//!   open transaction rolls back to its pre-transaction snapshot.
//!
//! Failures print the case seed; replay with
//! `envy_sim::check::replay(seed, case)`.

use envy_core::config::EnvyConfig;
use envy_core::error::EnvyError;
use envy_core::store::EnvyStore;
use envy_core::{FaultPlan, InjectionPoint};
use envy_sim::check::{cases, Gen};

const PAGE: u64 = 256;

fn config() -> EnvyConfig {
    EnvyConfig::scaled(2, 8, 32, PAGE as u32)
        .with_utilization(0.7)
        .with_buffer_pages(8)
        .with_wear_threshold(20)
}

fn random_plan(g: &mut Gen) -> FaultPlan {
    let point = *g.pick(&InjectionPoint::ALL);
    let mut plan = FaultPlan::crash_at(point, g.range(1, 4)).with_torn_chips(g.below(257) as u32);
    if g.chance(0.4) {
        let ops = g.vec_of(1, 5, |g| g.range(1, 60));
        plan = plan.with_program_failures(ops);
    }
    if g.chance(0.2) {
        let ops = g.vec_of(1, 3, |g| g.range(1, 8));
        plan = plan.with_erase_failures(ops);
    }
    plan
}

/// One whole-page write of a uniform byte; the page is the unit of
/// atomicity the checker verifies.
fn write_page(s: &mut EnvyStore, lp: u64, v: u8) -> Result<(), EnvyError> {
    s.write(lp * PAGE, &[v; PAGE as usize])
}

/// Read a page and assert it is byte-uniform (not half-visible);
/// returns the byte.
fn read_uniform(s: &mut EnvyStore, lp: u64) -> u8 {
    let mut buf = [0u8; PAGE as usize];
    s.read(lp * PAGE, &mut buf).unwrap();
    let v = buf[0];
    assert!(
        buf.iter().all(|&b| b == v),
        "page {lp} reads back torn (starts {v:#04x})"
    );
    v
}

fn case(g: &mut Gen) {
    let mut s = EnvyStore::new(config()).unwrap();
    s.prefill().unwrap();
    let n = s.config().logical_pages;
    let mut mirror = vec![0xFFu8; n as usize];
    s.arm_faults(random_plan(g));
    // Open transaction: (id, mirror snapshot at begin).
    let mut txn: Option<(u64, Vec<u8>)> = None;
    // Writes inside the open transaction: every shadow page is capacity
    // the cleaner must carry, so an unbounded transaction exhausts the
    // array. The paper's hardware transactions are short; keep ours so.
    let mut txn_writes = 0u32;
    // Plain write cut off by the crash: may land fully old or fully new.
    let mut in_flight: Option<(u64, u8)> = None;
    let mut crashed = false;
    let steps = g.range(200, 3_000);
    let hot = g.range(16, n);
    for _ in 0..steps {
        let roll = g.below(100);
        if roll < 4 && txn.is_none() {
            match s.txn_begin() {
                Ok(id) => {
                    txn = Some((id, mirror.clone()));
                    txn_writes = 0;
                }
                Err(EnvyError::PowerLoss) => {
                    crashed = true;
                    break;
                }
                Err(e) => panic!("txn_begin: {e}"),
            }
        } else if roll < 12 || txn_writes >= 16 {
            if let Some((id, snapshot)) = txn.take() {
                if g.chance(0.7) {
                    match s.txn_commit(id) {
                        Ok(()) => {}
                        Err(EnvyError::PowerLoss) => {
                            txn = Some((id, snapshot));
                            crashed = true;
                            break;
                        }
                        Err(e) => panic!("txn_commit: {e}"),
                    }
                } else {
                    match s.txn_abort(id) {
                        Ok(()) => mirror = snapshot,
                        Err(EnvyError::PowerLoss) => {
                            txn = Some((id, snapshot));
                            crashed = true;
                            break;
                        }
                        Err(e) => panic!("txn_abort: {e}"),
                    }
                }
                txn_writes = 0;
            }
        } else if roll < 16 {
            let lp = g.below(n);
            assert_eq!(read_uniform(&mut s, lp), mirror[lp as usize]);
        } else {
            let lp = g.below(hot);
            let v = g.byte();
            match write_page(&mut s, lp, v) {
                Ok(()) => {
                    mirror[lp as usize] = v;
                    if txn.is_some() {
                        txn_writes += 1;
                    }
                }
                Err(EnvyError::PowerLoss) => {
                    in_flight = Some((lp, v));
                    crashed = true;
                    break;
                }
                Err(e) => panic!("write: {e}"),
            }
        }
    }
    if crashed {
        s.power_failure();
        let report = s.recover().unwrap();
        s.check_invariants().unwrap();
        // Recovery resolves a transaction all-or-nothing; nothing stays
        // open across it.
        assert_eq!(s.engine().active_txn(), None, "txn open after recovery");
        match txn.take() {
            Some((id, snapshot)) => {
                if report.txn_rolled_back == Some(id) {
                    // No durable commit record: the transaction (and the
                    // in-flight write, if it was the crash site) is gone.
                    mirror = snapshot;
                    in_flight = None;
                } else {
                    // The journaled commit record survived (recovery
                    // finished the release) or the commit had fully
                    // completed: every acknowledged write stands, which
                    // the full sweep below verifies.
                    assert!(
                        report.txn_completed == Some(id) || report.txn_completed.is_none(),
                        "foreign transaction resolved: {report:?}"
                    );
                }
            }
            None => assert_eq!(report.txn_rolled_back, None, "phantom rollback"),
        }
    } else if let Some((id, snapshot)) = txn.take() {
        // The crash never fired; close the straggler without tripping
        // the still-armed plan's abort injection points.
        s.arm_faults(FaultPlan::default());
        s.txn_abort(id).unwrap();
        mirror = snapshot;
    }
    s.check_invariants().unwrap();
    if let Some((lp, v)) = in_flight {
        let got = read_uniform(&mut s, lp);
        assert!(
            got == mirror[lp as usize] || got == v,
            "in-flight page {lp}: got {got:#04x}, want old {:#04x} or new {v:#04x}",
            mirror[lp as usize]
        );
        mirror[lp as usize] = got;
    }
    for lp in 0..n {
        assert_eq!(
            read_uniform(&mut s, lp),
            mirror[lp as usize],
            "acknowledged write lost at page {lp}"
        );
    }
    s.check_invariants().unwrap();
}

#[test]
fn randomized_crash_consistency() {
    cases(0xC4A5_4C0A_5157, 220, case);
}
