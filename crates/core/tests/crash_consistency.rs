//! Randomized crash-consistency checker.
//!
//! Each case drives an [`EnvyStore`] with a random mix of page writes
//! and transactions while a randomly chosen [`FaultPlan`] is armed: a
//! power failure at a random injection point and hit count, plus random
//! program/erase verify failures and a random torn-program width. When
//! the crash fires the case power-fails the store, recovers, and checks
//! the recovery contract:
//!
//! * recovery succeeds and every structural invariant holds;
//! * **no acknowledged write is lost** — every page whose write (or
//!   transaction commit) returned `Ok` reads back its last value;
//! * **no unacknowledged write is half-visible** — the single in-flight
//!   write is either fully old or fully new (pages are written with a
//!   uniform byte, so a torn page would read back mixed bytes), and an
//!   open transaction rolls back to its pre-transaction snapshot.
//!
//! Failures print the case seed; replay with
//! `envy_sim::check::replay(seed, case)`.

use envy_core::config::EnvyConfig;
use envy_core::error::EnvyError;
use envy_core::store::EnvyStore;
use envy_core::{FaultPlan, InjectionPoint};
use envy_sim::check::{cases, Gen};

const PAGE: u64 = 256;

fn config() -> EnvyConfig {
    EnvyConfig::scaled(2, 8, 32, PAGE as u32)
        .with_utilization(0.7)
        .with_buffer_pages(8)
        .with_wear_threshold(20)
}

fn random_plan(g: &mut Gen) -> FaultPlan {
    let point = *g.pick(&InjectionPoint::ALL);
    let mut plan = FaultPlan::crash_at(point, g.range(1, 4)).with_torn_chips(g.below(257) as u32);
    if g.chance(0.4) {
        let ops = g.vec_of(1, 5, |g| g.range(1, 60));
        plan = plan.with_program_failures(ops);
    }
    if g.chance(0.2) {
        let ops = g.vec_of(1, 3, |g| g.range(1, 8));
        plan = plan.with_erase_failures(ops);
    }
    plan
}

/// One whole-page write of a uniform byte; the page is the unit of
/// atomicity the checker verifies.
fn write_page(s: &mut EnvyStore, lp: u64, v: u8) -> Result<(), EnvyError> {
    s.write(lp * PAGE, &[v; PAGE as usize])
}

/// Read a page and assert it is byte-uniform (not half-visible);
/// returns the byte.
fn read_uniform(s: &mut EnvyStore, lp: u64) -> u8 {
    let mut buf = [0u8; PAGE as usize];
    s.read(lp * PAGE, &mut buf).unwrap();
    let v = buf[0];
    assert!(
        buf.iter().all(|&b| b == v),
        "page {lp} reads back torn (starts {v:#04x})"
    );
    v
}

fn case(g: &mut Gen) {
    let mut s = EnvyStore::new(config()).unwrap();
    s.prefill().unwrap();
    let n = s.config().logical_pages;
    let mut mirror = vec![0xFFu8; n as usize];
    s.arm_faults(random_plan(g));
    // Open transaction: (id, mirror snapshot at begin). Plain writes
    // executed while it is open land in *both* the mirror and the
    // snapshot — they are independent of the transaction and survive
    // its abort.
    let mut txn: Option<(u64, Vec<u8>)> = None;
    // Writes inside the open transaction: every shadow page is capacity
    // the cleaner must carry, so an unbounded transaction exhausts the
    // array. The paper's hardware transactions are short; keep ours so.
    let mut txn_writes = 0u32;
    // Write cut off by the crash: may land fully old or fully new. The
    // flag records whether it was transactional (and so vanishes with a
    // rollback) or plain (unaffected by the transaction's fate).
    let mut in_flight: Option<(u64, u8, bool)> = None;
    let mut crashed = false;
    let steps = g.range(200, 3_000);
    let hot = g.range(16, n);
    for _ in 0..steps {
        let roll = g.below(100);
        if roll < 4 && txn.is_none() {
            match s.txn_begin() {
                Ok(id) => {
                    txn = Some((id, mirror.clone()));
                    txn_writes = 0;
                }
                Err(EnvyError::PowerLoss) => {
                    crashed = true;
                    break;
                }
                Err(e) => panic!("txn_begin: {e}"),
            }
        } else if roll < 12 || txn_writes >= 16 {
            if let Some((id, snapshot)) = txn.take() {
                if g.chance(0.7) {
                    match s.txn_commit(id) {
                        Ok(()) => {}
                        Err(EnvyError::PowerLoss) => {
                            txn = Some((id, snapshot));
                            crashed = true;
                            break;
                        }
                        Err(e) => panic!("txn_commit: {e}"),
                    }
                } else {
                    match s.txn_abort(id) {
                        Ok(()) => mirror = snapshot,
                        Err(EnvyError::PowerLoss) => {
                            txn = Some((id, snapshot));
                            crashed = true;
                            break;
                        }
                        Err(e) => panic!("txn_abort: {e}"),
                    }
                }
                txn_writes = 0;
            }
        } else if roll < 16 {
            let lp = g.below(n);
            assert_eq!(read_uniform(&mut s, lp), mirror[lp as usize]);
        } else if txn.is_some() && !g.chance(0.2) {
            // Transactional write: joins the open write set.
            let id = txn.as_ref().unwrap().0;
            let lp = g.below(hot);
            let v = g.byte();
            match s.txn_write(id, lp * PAGE, &[v; PAGE as usize]) {
                Ok(()) => {
                    mirror[lp as usize] = v;
                    txn_writes += 1;
                }
                Err(EnvyError::PowerLoss) => {
                    in_flight = Some((lp, v, true));
                    crashed = true;
                    break;
                }
                Err(e) => panic!("txn_write: {e}"),
            }
        } else {
            // Plain write — independent of any open transaction. It may
            // be refused with a conflict when it hits the open write
            // set; then it simply did not happen.
            let lp = g.below(hot);
            let v = g.byte();
            match write_page(&mut s, lp, v) {
                Ok(()) => {
                    mirror[lp as usize] = v;
                    if let Some((_, snapshot)) = txn.as_mut() {
                        snapshot[lp as usize] = v;
                    }
                }
                Err(EnvyError::TxnConflict { .. }) => {
                    assert!(txn.is_some(), "conflict with no open transaction");
                }
                Err(EnvyError::PowerLoss) => {
                    in_flight = Some((lp, v, false));
                    crashed = true;
                    break;
                }
                Err(e) => panic!("write: {e}"),
            }
        }
    }
    if crashed {
        s.power_failure();
        let report = s.recover().unwrap();
        s.check_invariants().unwrap();
        // Recovery resolves every transaction all-or-nothing; nothing
        // stays open across it.
        assert!(s.engine().open_txns().is_empty(), "txn open after recovery");
        match txn.take() {
            Some((id, snapshot)) => {
                if report.txn_rolled_back.contains(&id) {
                    // No durable commit record: the transaction (and a
                    // transactional in-flight write) is gone. A plain
                    // in-flight write is untouched by the rollback.
                    mirror = snapshot;
                    if matches!(in_flight, Some((_, _, true))) {
                        in_flight = None;
                    }
                } else {
                    // The journaled commit record survived (recovery
                    // finished the release) or the commit had fully
                    // completed: every acknowledged write stands, which
                    // the full sweep below verifies.
                    assert!(
                        report.txn_completed == [id] || report.txn_completed.is_empty(),
                        "foreign transaction resolved: {report:?}"
                    );
                }
            }
            None => {
                // A begin cut between taking the slot and returning the
                // id may roll back an (empty) unacknowledged
                // transaction; anything else rolled back is a phantom.
                assert!(
                    report.txn_rolled_back.len() <= 1,
                    "phantom rollback: {report:?}"
                );
            }
        }
    } else if let Some((id, snapshot)) = txn.take() {
        // The crash never fired; close the straggler without tripping
        // the still-armed plan's abort injection points.
        s.arm_faults(FaultPlan::default());
        s.txn_abort(id).unwrap();
        mirror = snapshot;
    }
    s.check_invariants().unwrap();
    if let Some((lp, v, _)) = in_flight {
        let got = read_uniform(&mut s, lp);
        assert!(
            got == mirror[lp as usize] || got == v,
            "in-flight page {lp}: got {got:#04x}, want old {:#04x} or new {v:#04x}",
            mirror[lp as usize]
        );
        mirror[lp as usize] = got;
    }
    for lp in 0..n {
        assert_eq!(
            read_uniform(&mut s, lp),
            mirror[lp as usize],
            "acknowledged write lost at page {lp}"
        );
    }
    s.check_invariants().unwrap();
}

#[test]
fn randomized_crash_consistency() {
    cases(0xC4A5_4C0A_5157, 220, case);
}

/// One simulated client of the concurrent checker: its open transaction
/// (if any) and the per-page undo values captured at first write.
#[derive(Default)]
struct TxnClient {
    open: Option<u64>,
    /// `lp -> pre-transaction byte`, for pages this transaction wrote.
    undo: std::collections::HashMap<u64, u8>,
    writes: u32,
}

/// Randomized concurrent-transaction checker: K seeded clients issue
/// interleaved begin/write/commit/abort against one controller with K
/// transaction slots, while a random fault plan (drawn from the full
/// injection-point catalog, including the begin points) is armed.
///
/// Checked properties:
///
/// * **isolation** — a write to a page in another open transaction's
///   write set is refused with `TxnConflict` naming the holder; it never
///   executes and never joins;
/// * **serializability of committed write sets** — write sets are
///   disjoint by construction (conflicts are refused), so the final
///   state must equal the mirror that applies each committed
///   transaction's writes and undoes each aborted/rolled-back one;
/// * **all-or-nothing under crash** — after a crash, each transaction
///   open at the cut is independently either completed (journaled
///   record) or rolled back whole, per the recovery report.
fn concurrent_case(g: &mut Gen) {
    const K: usize = 4;
    let mut s = EnvyStore::new(config().with_txn_slots(K as u32)).unwrap();
    s.prefill().unwrap();
    let n = s.config().logical_pages;
    let mut mirror = vec![0xFFu8; n as usize];
    s.arm_faults(random_plan(g));
    let mut clients: Vec<TxnClient> = (0..K).map(|_| TxnClient::default()).collect();
    let mut crashed = false;
    // A write cut mid-operation: (page, new byte, writer id if any).
    let mut in_flight: Option<(u64, u8, Option<u64>)> = None;
    let steps = g.range(300, 2_500);
    let hot = g.range(16, n);
    'steps: for _ in 0..steps {
        let c = g.below(K as u64) as usize;
        let roll = g.below(100);
        if clients[c].open.is_none() {
            if roll < 40 {
                match s.txn_begin() {
                    Ok(id) => clients[c].open = Some(id),
                    Err(EnvyError::TxnSlotsFull { .. }) => {
                        panic!("slot table full with {K} slots and {K} clients")
                    }
                    Err(EnvyError::PowerLoss) => {
                        crashed = true;
                        break 'steps;
                    }
                    Err(e) => panic!("txn_begin: {e}"),
                }
            } else if roll < 55 {
                // Plain write from an idle client.
                let lp = g.below(hot);
                let v = g.byte();
                match s.write(lp * PAGE, &[v; PAGE as usize]) {
                    Ok(()) => mirror[lp as usize] = v,
                    Err(EnvyError::TxnConflict { holder }) => {
                        let owned = clients
                            .iter()
                            .any(|cl| cl.open == Some(holder) && cl.undo.contains_key(&lp));
                        assert!(owned, "conflict names non-holder {holder} for page {lp}");
                    }
                    Err(EnvyError::PowerLoss) => {
                        in_flight = Some((lp, v, None));
                        crashed = true;
                        break 'steps;
                    }
                    Err(e) => panic!("write: {e}"),
                }
            } else {
                let lp = g.below(n);
                assert_eq!(read_uniform(&mut s, lp), mirror[lp as usize]);
            }
        } else if roll < 25 || clients[c].writes >= 12 {
            let id = clients[c].open.take().unwrap();
            let undo = std::mem::take(&mut clients[c].undo);
            clients[c].writes = 0;
            if g.chance(0.6) {
                match s.txn_commit(id) {
                    Ok(()) => {}
                    Err(EnvyError::PowerLoss) => {
                        clients[c].open = Some(id);
                        clients[c].undo = undo;
                        crashed = true;
                        break 'steps;
                    }
                    Err(e) => panic!("txn_commit: {e}"),
                }
            } else {
                match s.txn_abort(id) {
                    Ok(()) => {
                        for (&lp, &old) in &undo {
                            mirror[lp as usize] = old;
                        }
                    }
                    Err(EnvyError::PowerLoss) => {
                        clients[c].open = Some(id);
                        clients[c].undo = undo;
                        crashed = true;
                        break 'steps;
                    }
                    Err(e) => panic!("txn_abort: {e}"),
                }
            }
        } else {
            let id = clients[c].open.unwrap();
            let lp = g.below(hot);
            let v = g.byte();
            let foreign_holder = clients
                .iter()
                .find(|cl| cl.open.is_some() && cl.open != Some(id) && cl.undo.contains_key(&lp))
                .and_then(|cl| cl.open);
            match s.txn_write(id, lp * PAGE, &[v; PAGE as usize]) {
                Ok(()) => {
                    assert_eq!(
                        foreign_holder, None,
                        "write to page {lp} owned by {foreign_holder:?} succeeded"
                    );
                    let old = mirror[lp as usize];
                    clients[c].undo.entry(lp).or_insert(old);
                    mirror[lp as usize] = v;
                    clients[c].writes += 1;
                }
                Err(EnvyError::TxnConflict { holder }) => {
                    assert_eq!(
                        Some(holder),
                        foreign_holder,
                        "conflict names {holder}, expected {foreign_holder:?}"
                    );
                }
                Err(EnvyError::PowerLoss) => {
                    in_flight = Some((lp, v, Some(id)));
                    crashed = true;
                    break 'steps;
                }
                Err(e) => panic!("txn_write: {e}"),
            }
        }
    }
    if crashed {
        s.power_failure();
        let report = s.recover().unwrap();
        s.check_invariants().unwrap();
        assert!(s.engine().open_txns().is_empty(), "txn open after recovery");
        // Resolve each client's transaction per the report,
        // independently: completed write sets stand, rolled-back ones
        // are undone whole.
        for cl in &mut clients {
            let Some(id) = cl.open.take() else { continue };
            let undo = std::mem::take(&mut cl.undo);
            if report.txn_completed.contains(&id) {
                continue;
            }
            assert!(
                report.txn_rolled_back.contains(&id) || report.txn_completed.is_empty(),
                "transaction {id} neither completed nor rolled back: {report:?}"
            );
            if report.txn_rolled_back.contains(&id) {
                for (&lp, &old) in &undo {
                    mirror[lp as usize] = old;
                }
                if matches!(in_flight, Some((_, _, Some(w))) if w == id) {
                    in_flight = None;
                }
            }
        }
    } else {
        // Close stragglers cleanly (committing half, aborting half).
        s.arm_faults(FaultPlan::default());
        for (i, cl) in clients.iter_mut().enumerate() {
            let Some(id) = cl.open.take() else { continue };
            let undo = std::mem::take(&mut cl.undo);
            if i % 2 == 0 {
                s.txn_commit(id).unwrap();
            } else {
                s.txn_abort(id).unwrap();
                for (&lp, &old) in &undo {
                    mirror[lp as usize] = old;
                }
            }
        }
    }
    s.check_invariants().unwrap();
    if let Some((lp, v, _)) = in_flight {
        let got = read_uniform(&mut s, lp);
        assert!(
            got == mirror[lp as usize] || got == v,
            "in-flight page {lp}: got {got:#04x}, want old {:#04x} or new {v:#04x}",
            mirror[lp as usize]
        );
        mirror[lp as usize] = got;
    }
    for lp in 0..n {
        assert_eq!(
            read_uniform(&mut s, lp),
            mirror[lp as usize],
            "committed state diverges from the serial mirror at page {lp}"
        );
    }
}

#[test]
fn randomized_concurrent_transactions() {
    cases(0xC0C_4773_1D05, 160, concurrent_case);
}
