//! The aggregate Flash array: banks × segments × pages.
//!
//! The eNVy controller manages Flash at page and segment granularity: a
//! page (256 bytes in the paper) moves across the wide datapath in one
//! cycle, and a segment (an erase-block row across a bank) is the erase
//! unit. Because all 256 chips of a bank act in lock-step, this model
//! tracks state per page rather than per chip; the per-chip rules
//! (write-once, bulk erase, wear) are identical to
//! [`crate::chip::FlashChip`].

use crate::error::FlashError;
use crate::geometry::{FlashGeometry, FlashTimings};
use envy_sim::stats::Counter;
use envy_sim::time::Ns;
use envy_sync::{ArenaView, SharedArena};

/// Lifecycle state of one Flash page.
///
/// A page moves `Erased → Valid → Invalid → (segment erase) → Erased`.
/// There is no path from `Valid` or `Invalid` back to `Erased` except a
/// bulk segment erase — that is the constraint the whole eNVy design
/// exists to manage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Erased and programmable.
    Erased,
    /// Holds live data.
    Valid,
    /// Holds stale data awaiting cleaning.
    Invalid,
}

/// Operation counters for the array.
#[derive(Debug, Clone, Default)]
pub struct FlashStats {
    /// Page reads serviced.
    pub page_reads: Counter,
    /// Page program operations.
    pub page_programs: Counter,
    /// Segment erases.
    pub segment_erases: Counter,
    /// Total simulated time spent programming.
    pub program_time: Ns,
    /// Total simulated time spent erasing.
    pub erase_time: Ns,
}

/// A deterministic schedule of injected chip faults for a [`FlashArray`].
///
/// Operation indices are 1-based and count only the matching operation
/// kind: `program_fail_ops = {3}` makes the third program operation after
/// the schedule is armed report `program_error`. Each scheduled failure
/// fires once and is consumed. An empty schedule never perturbs the
/// array, and an array with no schedule armed behaves identically to one
/// built before this mechanism existed.
#[derive(Debug, Clone, Default)]
pub struct FlashFaults {
    /// 1-based program-operation indices that must fail verify.
    pub program_fail_ops: std::collections::BTreeSet<u64>,
    /// 1-based erase-operation indices that must fail verify.
    pub erase_fail_ops: std::collections::BTreeSet<u64>,
    programs_seen: u64,
    erases_seen: u64,
}

impl FlashFaults {
    /// A schedule failing the given (1-based) program operations.
    pub fn fail_programs(ops: impl IntoIterator<Item = u64>) -> FlashFaults {
        FlashFaults {
            program_fail_ops: ops.into_iter().collect(),
            ..FlashFaults::default()
        }
    }

    /// A schedule failing the given (1-based) erase operations.
    pub fn fail_erases(ops: impl IntoIterator<Item = u64>) -> FlashFaults {
        FlashFaults {
            erase_fail_ops: ops.into_iter().collect(),
            ..FlashFaults::default()
        }
    }

    /// Whether every scheduled failure has fired.
    pub fn exhausted(&self) -> bool {
        self.program_fail_ops.is_empty() && self.erase_fail_ops.is_empty()
    }
}

#[derive(Debug, Clone)]
struct Segment {
    pages: Vec<PageState>,
    erase_cycles: u64,
    valid: u32,
    invalid: u32,
}

impl Segment {
    fn new(pages_per_segment: u32) -> Segment {
        Segment {
            pages: vec![PageState::Erased; pages_per_segment as usize],
            erase_cycles: 0,
            valid: 0,
            invalid: 0,
        }
    }
}

/// A Flash array of banks, segments and pages with eNVy's semantics.
///
/// Payload storage is optional: timing studies at the paper's full 2 GB
/// scale track page state only (`store_data = false`), while functional
/// tests verify byte-level integrity with storage enabled.
///
/// # Example
///
/// ```
/// use envy_flash::{FlashArray, FlashGeometry, FlashTimings};
///
/// # fn main() -> Result<(), envy_flash::FlashError> {
/// let geo = FlashGeometry::new(1, 4, 8, 64)?;
/// let mut a = FlashArray::new(geo, FlashTimings::paper(), false);
/// a.program_page(2, 0, None)?;
/// assert_eq!(a.valid_pages(2), 1);
/// a.invalidate_page(2, 0)?;
/// a.erase_segment(2)?;
/// assert_eq!(a.erase_cycles(2), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FlashArray {
    geo: FlashGeometry,
    timings: FlashTimings,
    segments: Vec<Segment>,
    /// Page payloads for the whole array, one flat arena indexed by
    /// `(segment * pages_per_segment + page) * page_bytes`. Stored as a
    /// shared atomic arena so concurrent readers (see `envy_sync`) can
    /// copy page bytes while the single writer mutates; `Clone` deep-copies.
    payload: Option<SharedArena>,
    stats: FlashStats,
    /// Armed fault schedule; `None` (the default) is the zero-overhead
    /// fault-free path.
    faults: Option<Box<FlashFaults>>,
}

impl FlashArray {
    /// Create an array, fully erased.
    pub fn new(geo: FlashGeometry, timings: FlashTimings, store_data: bool) -> FlashArray {
        let segments = (0..geo.segments())
            .map(|_| Segment::new(geo.pages_per_segment()))
            .collect();
        let payload = store_data.then(|| {
            let bytes = geo.total_pages() as usize * geo.page_bytes() as usize;
            SharedArena::new(bytes, 0xFF)
        });
        FlashArray {
            geo,
            timings,
            segments,
            payload,
            stats: FlashStats::default(),
            faults: None,
        }
    }

    /// Byte offset of a page's payload within the flat arena.
    #[inline]
    fn page_base(&self, segment: u32, page: u32) -> usize {
        (segment as usize * self.geo.pages_per_segment() as usize + page as usize)
            * self.geo.page_bytes() as usize
    }

    /// Reader handle to the payload arena (if payload storage is enabled),
    /// for lock-free concurrent page reads validated by an external epoch.
    pub fn payload_view(&self) -> Option<ArenaView> {
        self.payload.as_ref().map(SharedArena::view)
    }

    /// Arm a deterministic fault schedule (replacing any previous one).
    /// Pass `None` to disarm and restore fault-free operation.
    pub fn set_faults(&mut self, faults: Option<FlashFaults>) {
        self.faults = faults.map(Box::new);
    }

    /// The armed fault schedule, if any.
    pub fn faults(&self) -> Option<&FlashFaults> {
        self.faults.as_deref()
    }

    /// The array geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geo
    }

    /// The device timings.
    pub fn timings(&self) -> &FlashTimings {
        &self.timings
    }

    /// Whether payload bytes are stored.
    pub fn stores_data(&self) -> bool {
        self.payload.is_some()
    }

    /// Operation counters.
    pub fn stats(&self) -> &FlashStats {
        &self.stats
    }

    /// Zero the operation counters. Wear state (erase cycles) and page
    /// contents are untouched — this separates *measurement* from *state*
    /// so a warmed-up array can serve as the baseline for an experiment.
    pub fn reset_stats(&mut self) {
        self.stats = FlashStats::default();
    }

    fn check(&self, segment: u32, page: u32) -> Result<(), FlashError> {
        if segment >= self.geo.segments() {
            return Err(FlashError::OutOfRange {
                segment,
                page: u32::MAX,
            });
        }
        if page >= self.geo.pages_per_segment() {
            return Err(FlashError::OutOfRange { segment, page });
        }
        Ok(())
    }

    /// State of one page.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn page_state(&self, segment: u32, page: u32) -> PageState {
        self.check(segment, page).expect("page index in range");
        self.segments[segment as usize].pages[page as usize]
    }

    /// Read a page. If payload storage is enabled and `buf` is provided,
    /// the page contents are copied out (`buf` must be page-sized).
    ///
    /// Returns the device time for one wide-bus read cycle. Reading any
    /// page state is allowed (reading invalid data is how shadow-copy
    /// rollback works, §6).
    ///
    /// # Errors
    ///
    /// [`FlashError::OutOfRange`] or [`FlashError::BadBufferLength`].
    pub fn read_page(
        &mut self,
        segment: u32,
        page: u32,
        buf: Option<&mut [u8]>,
    ) -> Result<Ns, FlashError> {
        self.check(segment, page)?;
        if let Some(buf) = buf {
            let pb = self.geo.page_bytes() as usize;
            if buf.len() != pb {
                return Err(FlashError::BadBufferLength {
                    expected: pb,
                    actual: buf.len(),
                });
            }
            if let Some(data) = &self.payload {
                data.read_bytes(self.page_base(segment, page), buf);
            } else {
                buf.fill(0xFF);
            }
        }
        self.stats.page_reads.incr();
        Ok(self.timings.read)
    }

    /// Read a sub-page range straight into the caller's slice: the bytes
    /// at `offset..offset + buf.len()` within the page land in `buf` with
    /// no intermediate page-sized scratch copy. With payload storage
    /// disabled, `buf` is filled with erased (0xFF) bytes.
    ///
    /// Counts and costs exactly like [`FlashArray::read_page`] — the
    /// datapath still moves the whole page; only the host-side copy
    /// narrows.
    ///
    /// # Errors
    ///
    /// [`FlashError::OutOfRange`], or [`FlashError::BadBufferLength`] if
    /// the range extends past the end of the page.
    pub fn read_page_into(
        &mut self,
        segment: u32,
        page: u32,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<Ns, FlashError> {
        self.check(segment, page)?;
        let pb = self.geo.page_bytes() as usize;
        if offset + buf.len() > pb {
            return Err(FlashError::BadBufferLength {
                expected: pb,
                actual: offset + buf.len(),
            });
        }
        if let Some(data) = &self.payload {
            data.read_bytes(self.page_base(segment, page) + offset, buf);
        } else {
            buf.fill(0xFF);
        }
        self.stats.page_reads.incr();
        Ok(self.timings.read)
    }

    /// Program a page (one wide-bus transfer plus the Flash program time).
    ///
    /// The page must be erased — Flash cannot update in place. If payload
    /// storage is enabled and `data` is provided it is written; programming
    /// with `None` marks the page valid with unspecified contents (used by
    /// state-only simulations).
    ///
    /// Returns the device program time (subject to wear degradation).
    ///
    /// # Errors
    ///
    /// [`FlashError::ProgramToNonErased`] if the page is not erased,
    /// [`FlashError::OutOfRange`], or [`FlashError::BadBufferLength`].
    pub fn program_page(
        &mut self,
        segment: u32,
        page: u32,
        data: Option<&[u8]>,
    ) -> Result<Ns, FlashError> {
        // Locate the segment with a single bounds probe; the no-data path
        // (state-only simulations) then touches nothing but the page-state
        // slot — no buffer-length or payload branches.
        let pps = self.geo.pages_per_segment();
        let Some(seg) = self.segments.get_mut(segment as usize) else {
            return Err(FlashError::OutOfRange {
                segment,
                page: u32::MAX,
            });
        };
        if page >= pps {
            return Err(FlashError::OutOfRange { segment, page });
        }
        let pb = self.geo.page_bytes() as usize;
        if data.is_some_and(|d| d.len() != pb) {
            return Err(FlashError::BadBufferLength {
                expected: pb,
                actual: data.map_or(0, <[u8]>::len),
            });
        }
        let state = &mut seg.pages[page as usize];
        if *state != PageState::Erased {
            return Err(FlashError::ProgramToNonErased { segment, page });
        }
        if let Some(f) = &mut self.faults {
            f.programs_seen += 1;
            if f.program_fail_ops.remove(&f.programs_seen) {
                // The program pulse ran but verify failed: the page holds
                // partially-cleared bits and cannot be reused until its
                // segment is erased.
                *state = PageState::Invalid;
                seg.invalid += 1;
                return Err(FlashError::ProgramFailed { segment, page });
            }
        }
        *state = PageState::Valid;
        seg.valid += 1;
        if let (Some(store), Some(data)) = (&self.payload, data) {
            let base = (segment as usize * pps as usize + page as usize) * pb;
            store.write_bytes(base, data);
        }
        let cost = self.timings.program_at(seg.erase_cycles);
        self.stats.page_programs.incr();
        self.stats.program_time += cost;
        Ok(cost)
    }

    /// A program operation torn by power loss partway through the wide
    /// transfer: of the 256 lock-step chips holding the page, only the
    /// first `chips_programmed` byte lanes latched their data (one byte
    /// per chip, as in the paper's bank layout). The page is left
    /// neither erased nor trustworthy; it is unreferenced garbage that
    /// recovery must scavenge before the segment can be cleaned.
    ///
    /// No operation counters are advanced — power died before the chip
    /// could report completion.
    ///
    /// # Errors
    ///
    /// Same validity errors as [`FlashArray::program_page`].
    pub fn program_page_torn(
        &mut self,
        segment: u32,
        page: u32,
        data: Option<&[u8]>,
        chips_programmed: u32,
    ) -> Result<(), FlashError> {
        self.check(segment, page)?;
        let pb = self.geo.page_bytes() as usize;
        if data.is_some_and(|d| d.len() != pb) {
            return Err(FlashError::BadBufferLength {
                expected: pb,
                actual: data.map_or(0, <[u8]>::len),
            });
        }
        let seg = &mut self.segments[segment as usize];
        let state = &mut seg.pages[page as usize];
        if *state != PageState::Erased {
            return Err(FlashError::ProgramToNonErased { segment, page });
        }
        // The torn page reads back as a mix of programmed and erased
        // lanes; it is recorded as Valid (bits were cleared) so the
        // scavenger can find and invalidate it.
        *state = PageState::Valid;
        seg.valid += 1;
        if let (Some(store), Some(data)) = (&self.payload, data) {
            let torn = (chips_programmed as usize).min(pb);
            let pps = self.geo.pages_per_segment() as usize;
            let base = (segment as usize * pps + page as usize) * pb;
            store.write_bytes(base, &data[..torn]);
        }
        Ok(())
    }

    /// An erase torn by power loss mid-pulse: every page of the segment
    /// is left indeterminate (recorded as invalid) and the erase must be
    /// reissued. Cycle counters are not advanced — the pulse did not
    /// complete.
    ///
    /// # Errors
    ///
    /// [`FlashError::EraseWithLiveData`] or [`FlashError::OutOfRange`],
    /// as for [`FlashArray::erase_segment`].
    pub fn erase_segment_torn(&mut self, segment: u32) -> Result<(), FlashError> {
        self.check(segment, 0)?;
        let pps = self.geo.pages_per_segment();
        let seg = &mut self.segments[segment as usize];
        if seg.valid > 0 {
            return Err(FlashError::EraseWithLiveData {
                segment,
                live_pages: seg.valid,
            });
        }
        seg.pages.fill(PageState::Invalid);
        seg.invalid = pps;
        if let Some(data) = &self.payload {
            let len = pps as usize * self.geo.page_bytes() as usize;
            data.fill(segment as usize * len, len, 0x00);
        }
        Ok(())
    }

    /// Mark a valid page invalid (the copy-on-write retired it).
    ///
    /// # Errors
    ///
    /// [`FlashError::InvalidateNonValid`] if the page is not valid, or
    /// [`FlashError::OutOfRange`].
    pub fn invalidate_page(&mut self, segment: u32, page: u32) -> Result<(), FlashError> {
        self.check(segment, page)?;
        let seg = &mut self.segments[segment as usize];
        if seg.pages[page as usize] != PageState::Valid {
            return Err(FlashError::InvalidateNonValid { segment, page });
        }
        seg.pages[page as usize] = PageState::Invalid;
        seg.valid -= 1;
        seg.invalid += 1;
        Ok(())
    }

    /// Restore an invalid page to valid (§6 hardware transactions: the
    /// invalidated copy-on-write original is a shadow copy, and rollback
    /// makes it the live copy again). Purely a metadata transition — the
    /// data was never destroyed.
    ///
    /// # Errors
    ///
    /// [`FlashError::InvalidateNonValid`] if the page is not invalid (the
    /// shadow was lost), or [`FlashError::OutOfRange`].
    pub fn revalidate_page(&mut self, segment: u32, page: u32) -> Result<(), FlashError> {
        self.check(segment, page)?;
        let seg = &mut self.segments[segment as usize];
        if seg.pages[page as usize] != PageState::Invalid {
            return Err(FlashError::InvalidateNonValid { segment, page });
        }
        seg.pages[page as usize] = PageState::Valid;
        seg.invalid -= 1;
        seg.valid += 1;
        Ok(())
    }

    /// Erase a segment. Every page must be invalid or already erased; the
    /// eNVy cleaner guarantees this by copying live data out first.
    ///
    /// Returns the device erase time (subject to wear degradation).
    ///
    /// # Errors
    ///
    /// [`FlashError::EraseWithLiveData`] if any page is still valid, or
    /// [`FlashError::OutOfRange`].
    pub fn erase_segment(&mut self, segment: u32) -> Result<Ns, FlashError> {
        self.check(segment, 0)?;
        let pps = self.geo.pages_per_segment();
        let seg = &mut self.segments[segment as usize];
        if seg.valid > 0 {
            return Err(FlashError::EraseWithLiveData {
                segment,
                live_pages: seg.valid,
            });
        }
        if let Some(f) = &mut self.faults {
            f.erases_seen += 1;
            if f.erase_fail_ops.remove(&f.erases_seen) {
                // The erase pulse ran but verify failed: every page is
                // indeterminate until a successful erase.
                seg.pages.fill(PageState::Invalid);
                seg.invalid = pps;
                if let Some(data) = &self.payload {
                    let len = pps as usize * self.geo.page_bytes() as usize;
                    data.fill(segment as usize * len, len, 0x00);
                }
                return Err(FlashError::EraseFailed { segment });
            }
        }
        seg.pages.fill(PageState::Erased);
        seg.invalid = 0;
        seg.erase_cycles += 1;
        if let Some(data) = &self.payload {
            let len = pps as usize * self.geo.page_bytes() as usize;
            data.fill(segment as usize * len, len, 0xFF);
        }
        let cost = self.timings.erase_at(seg.erase_cycles);
        self.stats.segment_erases.incr();
        self.stats.erase_time += cost;
        Ok(cost)
    }

    /// Number of valid (live) pages in a segment.
    pub fn valid_pages(&self, segment: u32) -> u32 {
        self.segments[segment as usize].valid
    }

    /// Number of invalid (dead) pages in a segment.
    pub fn invalid_pages(&self, segment: u32) -> u32 {
        self.segments[segment as usize].invalid
    }

    /// Number of erased (writable) pages in a segment.
    pub fn erased_pages(&self, segment: u32) -> u32 {
        let seg = &self.segments[segment as usize];
        self.geo.pages_per_segment() - seg.valid - seg.invalid
    }

    /// Live-data fraction of a segment.
    pub fn utilization(&self, segment: u32) -> f64 {
        self.segments[segment as usize].valid as f64 / self.geo.pages_per_segment() as f64
    }

    /// Erase cycles a segment has sustained.
    pub fn erase_cycles(&self, segment: u32) -> u64 {
        self.segments[segment as usize].erase_cycles
    }

    /// The least-worn segment's cycle count.
    pub fn min_erase_cycles(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.erase_cycles)
            .min()
            .unwrap_or(0)
    }

    /// The most-worn segment's cycle count.
    pub fn max_erase_cycles(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.erase_cycles)
            .max()
            .unwrap_or(0)
    }

    /// Total live pages across the array.
    pub fn total_valid_pages(&self) -> u64 {
        self.segments.iter().map(|s| s.valid as u64).sum()
    }

    /// Live-data fraction of the whole array.
    pub fn array_utilization(&self) -> f64 {
        self.total_valid_pages() as f64 / self.geo.total_pages() as f64
    }

    /// The bank a segment lives in.
    pub fn bank_of(&self, segment: u32) -> u32 {
        self.geo.bank_of(segment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FlashArray {
        let geo = FlashGeometry::new(2, 4, 8, 16).unwrap();
        FlashArray::new(geo, FlashTimings::paper(), true)
    }

    #[test]
    fn fresh_array_is_erased() {
        let a = small();
        for s in 0..4 {
            assert_eq!(a.valid_pages(s), 0);
            assert_eq!(a.invalid_pages(s), 0);
            assert_eq!(a.erased_pages(s), 8);
            assert_eq!(a.erase_cycles(s), 0);
        }
        assert_eq!(a.array_utilization(), 0.0);
    }

    #[test]
    fn program_read_roundtrip() {
        let mut a = small();
        let data: Vec<u8> = (0..16).collect();
        let cost = a.program_page(1, 3, Some(&data)).unwrap();
        assert_eq!(cost, Ns::from_micros(4));
        assert_eq!(a.page_state(1, 3), PageState::Valid);
        let mut out = vec![0; 16];
        let rcost = a.read_page(1, 3, Some(&mut out)).unwrap();
        assert_eq!(rcost, Ns::from_nanos(100));
        assert_eq!(out, data);
    }

    #[test]
    fn program_twice_fails() {
        let mut a = small();
        a.program_page(0, 0, None).unwrap();
        let err = a.program_page(0, 0, None).unwrap_err();
        assert_eq!(
            err,
            FlashError::ProgramToNonErased {
                segment: 0,
                page: 0
            }
        );
    }

    #[test]
    fn program_invalid_page_fails() {
        let mut a = small();
        a.program_page(0, 0, None).unwrap();
        a.invalidate_page(0, 0).unwrap();
        assert!(a.program_page(0, 0, None).is_err());
    }

    #[test]
    fn invalidate_requires_valid() {
        let mut a = small();
        let err = a.invalidate_page(0, 5).unwrap_err();
        assert_eq!(
            err,
            FlashError::InvalidateNonValid {
                segment: 0,
                page: 5
            }
        );
        a.program_page(0, 5, None).unwrap();
        a.invalidate_page(0, 5).unwrap();
        // Double invalidate also fails.
        assert!(a.invalidate_page(0, 5).is_err());
    }

    #[test]
    fn erase_requires_no_live_data() {
        let mut a = small();
        a.program_page(2, 0, None).unwrap();
        a.program_page(2, 1, None).unwrap();
        let err = a.erase_segment(2).unwrap_err();
        assert_eq!(
            err,
            FlashError::EraseWithLiveData {
                segment: 2,
                live_pages: 2
            }
        );
        a.invalidate_page(2, 0).unwrap();
        a.invalidate_page(2, 1).unwrap();
        let cost = a.erase_segment(2).unwrap();
        assert_eq!(cost, Ns::from_millis(50));
        assert_eq!(a.erased_pages(2), 8);
        assert_eq!(a.erase_cycles(2), 1);
    }

    #[test]
    fn erase_resets_data_to_ff() {
        let mut a = small();
        let data = vec![0u8; 16];
        a.program_page(0, 0, Some(&data)).unwrap();
        a.invalidate_page(0, 0).unwrap();
        a.erase_segment(0).unwrap();
        a.program_page(0, 0, None).unwrap(); // valid, contents unspecified
        let mut out = vec![0; 16];
        a.read_page(0, 0, Some(&mut out)).unwrap();
        assert_eq!(out, vec![0xFF; 16]);
    }

    #[test]
    fn counts_track_state_transitions() {
        let mut a = small();
        a.program_page(3, 0, None).unwrap();
        a.program_page(3, 1, None).unwrap();
        a.program_page(3, 2, None).unwrap();
        a.invalidate_page(3, 1).unwrap();
        assert_eq!(a.valid_pages(3), 2);
        assert_eq!(a.invalid_pages(3), 1);
        assert_eq!(a.erased_pages(3), 5);
        assert!((a.utilization(3) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn stats_accumulate() {
        let mut a = small();
        a.program_page(0, 0, None).unwrap();
        a.read_page(0, 0, None).unwrap();
        a.invalidate_page(0, 0).unwrap();
        a.erase_segment(0).unwrap();
        assert_eq!(a.stats().page_programs.get(), 1);
        assert_eq!(a.stats().page_reads.get(), 1);
        assert_eq!(a.stats().segment_erases.get(), 1);
        assert_eq!(a.stats().program_time, Ns::from_micros(4));
        assert_eq!(a.stats().erase_time, Ns::from_millis(50));
    }

    #[test]
    fn revalidate_restores_shadow_copy() {
        let mut a = small();
        let data: Vec<u8> = (100..116).collect();
        a.program_page(0, 0, Some(&data)).unwrap();
        a.invalidate_page(0, 0).unwrap();
        a.revalidate_page(0, 0).unwrap();
        assert_eq!(a.page_state(0, 0), PageState::Valid);
        assert_eq!(a.valid_pages(0), 1);
        assert_eq!(a.invalid_pages(0), 0);
        // Data intact: it was never destroyed.
        let mut out = vec![0; 16];
        a.read_page(0, 0, Some(&mut out)).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn revalidate_requires_invalid() {
        let mut a = small();
        assert!(a.revalidate_page(0, 0).is_err()); // erased
        a.program_page(0, 0, None).unwrap();
        assert!(a.revalidate_page(0, 0).is_err()); // valid
    }

    #[test]
    fn out_of_range_checks() {
        let mut a = small();
        assert!(a.program_page(4, 0, None).is_err());
        assert!(a.program_page(0, 8, None).is_err());
        assert!(a.read_page(9, 0, None).is_err());
        assert!(a.erase_segment(11).is_err());
    }

    #[test]
    fn bad_buffer_lengths() {
        let mut a = small();
        let short = vec![0u8; 3];
        assert!(matches!(
            a.program_page(0, 0, Some(&short)),
            Err(FlashError::BadBufferLength {
                expected: 16,
                actual: 3
            })
        ));
        let mut out = vec![0u8; 99];
        assert!(a.read_page(0, 0, Some(&mut out)).is_err());
    }

    #[test]
    fn read_page_into_subrange() {
        let mut a = small();
        let data: Vec<u8> = (0..16).collect();
        a.program_page(1, 2, Some(&data)).unwrap();
        let mut out = [0u8; 5];
        let cost = a.read_page_into(1, 2, 3, &mut out).unwrap();
        assert_eq!(cost, Ns::from_nanos(100));
        assert_eq!(out, [3, 4, 5, 6, 7]);
        assert_eq!(a.stats().page_reads.get(), 1);
        // Range past the page end is rejected.
        let mut long = [0u8; 10];
        assert!(matches!(
            a.read_page_into(1, 2, 8, &mut long),
            Err(FlashError::BadBufferLength {
                expected: 16,
                actual: 18
            })
        ));
        // Stateless arrays fill erased bytes.
        let geo = FlashGeometry::new(1, 1, 4, 8).unwrap();
        let mut s = FlashArray::new(geo, FlashTimings::paper(), false);
        s.program_page(0, 0, None).unwrap();
        let mut out = [0u8; 4];
        s.read_page_into(0, 0, 2, &mut out).unwrap();
        assert_eq!(out, [0xFF; 4]);
    }

    #[test]
    fn stateless_mode_reads_ff() {
        let geo = FlashGeometry::new(1, 1, 4, 8).unwrap();
        let mut a = FlashArray::new(geo, FlashTimings::paper(), false);
        assert!(!a.stores_data());
        a.program_page(0, 0, None).unwrap();
        let mut out = vec![0; 8];
        a.read_page(0, 0, Some(&mut out)).unwrap();
        assert_eq!(out, vec![0xFF; 8]);
    }

    #[test]
    fn wear_tracking_across_segments() {
        let mut a = small();
        for _ in 0..3 {
            a.erase_segment(1).unwrap();
        }
        a.erase_segment(2).unwrap();
        assert_eq!(a.erase_cycles(1), 3);
        assert_eq!(a.min_erase_cycles(), 0);
        assert_eq!(a.max_erase_cycles(), 3);
    }

    #[test]
    fn utilization_accounting_whole_array() {
        let mut a = small();
        // 32 pages total; fill 8.
        for p in 0..8 {
            a.program_page(0, p, None).unwrap();
        }
        assert!((a.array_utilization() - 0.25).abs() < 1e-12);
        assert_eq!(a.total_valid_pages(), 8);
    }

    #[test]
    fn bank_mapping_exposed() {
        let a = small();
        assert_eq!(a.bank_of(0), 0);
        assert_eq!(a.bank_of(1), 0);
        assert_eq!(a.bank_of(2), 1);
        assert_eq!(a.bank_of(3), 1);
    }

    #[test]
    fn wear_degradation_applies_to_array_ops() {
        let geo = FlashGeometry::new(1, 1, 2, 8).unwrap();
        let timings = FlashTimings {
            wear_slowdown: 1.0,
            rated_cycles: 2,
            ..FlashTimings::paper()
        };
        let mut a = FlashArray::new(geo, timings, false);
        a.erase_segment(0).unwrap();
        a.erase_segment(0).unwrap(); // cycles = 2 = rated
        let cost = a.program_page(0, 0, None).unwrap();
        assert_eq!(cost, Ns::from_micros(8));
    }

    #[test]
    fn injected_program_fault_fires_on_nth_op_and_kills_the_page() {
        let mut a = small();
        a.set_faults(Some(FlashFaults::fail_programs([2])));
        a.program_page(0, 0, None).unwrap(); // op 1: fine
        let err = a.program_page(0, 1, None).unwrap_err(); // op 2: fails
        assert_eq!(
            err,
            FlashError::ProgramFailed {
                segment: 0,
                page: 1
            }
        );
        // The failed page is dead until erase; the next page still works.
        assert_eq!(a.page_state(0, 1), PageState::Invalid);
        assert!(a.program_page(0, 1, None).is_err());
        a.program_page(0, 2, None).unwrap(); // op 3: schedule exhausted
        assert!(a.faults().unwrap().exhausted());
    }

    #[test]
    fn injected_erase_fault_leaves_segment_unusable_until_retry() {
        let mut a = small();
        a.program_page(1, 0, None).unwrap();
        a.invalidate_page(1, 0).unwrap();
        a.set_faults(Some(FlashFaults::fail_erases([1])));
        let err = a.erase_segment(1).unwrap_err();
        assert_eq!(err, FlashError::EraseFailed { segment: 1 });
        assert_eq!(a.erased_pages(1), 0);
        assert_eq!(a.erase_cycles(1), 0, "torn pulse does not count");
        // Retry succeeds and fully restores the segment.
        a.erase_segment(1).unwrap();
        assert_eq!(a.erased_pages(1), 8);
    }

    #[test]
    fn disarmed_faults_behave_identically() {
        let mut a = small();
        a.set_faults(Some(FlashFaults::fail_programs([1])));
        a.set_faults(None);
        a.program_page(0, 0, None).unwrap();
        assert!(a.faults().is_none());
    }

    #[test]
    fn torn_program_writes_prefix_lanes_only() {
        let mut a = small();
        let data = vec![0x00u8; 16];
        a.program_page_torn(0, 0, Some(&data), 5).unwrap();
        assert_eq!(a.page_state(0, 0), PageState::Valid);
        let mut out = vec![0u8; 16];
        a.read_page(0, 0, Some(&mut out)).unwrap();
        // First 5 byte lanes latched; the rest still read erased.
        assert_eq!(&out[..5], &[0x00; 5]);
        assert_eq!(&out[5..], &[0xFF; 11]);
        // Write-once: the torn page cannot be programmed again.
        assert!(a.program_page(0, 0, Some(&data)).is_err());
    }

    #[test]
    fn torn_erase_requires_reissue() {
        let mut a = small();
        a.program_page(2, 0, None).unwrap();
        a.invalidate_page(2, 0).unwrap();
        a.erase_segment_torn(2).unwrap();
        assert_eq!(a.erased_pages(2), 0);
        assert_eq!(a.invalid_pages(2), 8);
        assert_eq!(a.erase_cycles(2), 0);
        a.erase_segment(2).unwrap();
        assert_eq!(a.erased_pages(2), 8);
        // A torn erase refuses segments with live data, like a real one.
        a.program_page(3, 0, None).unwrap();
        assert!(a.erase_segment_torn(3).is_err());
    }
}
