//! Flash error types.

use std::error::Error;
use std::fmt;

/// Errors raised by the Flash substrate.
///
/// These correspond to operations that real hardware would corrupt data on
/// (re-programming without an erase) or that the eNVy controller is
/// responsible for never issuing (erasing a segment that still holds live
/// data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashError {
    /// A program was issued to a page that is not in the erased state.
    /// Flash is write-once: bits can only be cleared, not set, until the
    /// whole block is erased.
    ProgramToNonErased {
        /// Segment index.
        segment: u32,
        /// Page index within the segment.
        page: u32,
    },
    /// An erase was issued to a segment that still contains valid pages.
    EraseWithLiveData {
        /// Segment index.
        segment: u32,
        /// Number of still-valid pages.
        live_pages: u32,
    },
    /// An invalidate was issued to a page that is not valid.
    InvalidateNonValid {
        /// Segment index.
        segment: u32,
        /// Page index within the segment.
        page: u32,
    },
    /// A segment or page index was out of range for the array geometry.
    OutOfRange {
        /// Segment index.
        segment: u32,
        /// Page index within the segment (`u32::MAX` if only the segment
        /// was out of range).
        page: u32,
    },
    /// The requested geometry is invalid (zero-sized dimension, or segment
    /// count not divisible by bank count).
    BadGeometry(&'static str),
    /// A data buffer did not match the page size.
    BadBufferLength {
        /// Expected length in bytes.
        expected: usize,
        /// Provided length in bytes.
        actual: usize,
    },
    /// A program operation failed verify (the chip raised its
    /// `program_error` status bit). The page is left partially
    /// programmed — neither erased nor trustworthy — and cannot be
    /// reused until its segment is erased; the controller must retry
    /// the data elsewhere.
    ProgramFailed {
        /// Segment index.
        segment: u32,
        /// Page index within the segment.
        page: u32,
    },
    /// A segment erase failed verify (the chip raised its `erase_error`
    /// status bit). Every page of the segment is left indeterminate and
    /// the controller must retry the erase before the segment can hold
    /// data again.
    EraseFailed {
        /// Segment index.
        segment: u32,
    },
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FlashError::ProgramToNonErased { segment, page } => {
                write!(
                    f,
                    "program issued to non-erased page {page} of segment {segment}"
                )
            }
            FlashError::EraseWithLiveData {
                segment,
                live_pages,
            } => write!(
                f,
                "erase issued to segment {segment} which still holds {live_pages} valid pages"
            ),
            FlashError::InvalidateNonValid { segment, page } => {
                write!(
                    f,
                    "invalidate issued to non-valid page {page} of segment {segment}"
                )
            }
            FlashError::OutOfRange { segment, page } => {
                if page == u32::MAX {
                    write!(f, "segment index {segment} out of range")
                } else {
                    write!(f, "page {page} of segment {segment} out of range")
                }
            }
            FlashError::BadGeometry(why) => write!(f, "invalid flash geometry: {why}"),
            FlashError::BadBufferLength { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match page size {expected}"
                )
            }
            FlashError::ProgramFailed { segment, page } => {
                write!(
                    f,
                    "program of page {page} in segment {segment} failed verify (program_error)"
                )
            }
            FlashError::EraseFailed { segment } => {
                write!(f, "erase of segment {segment} failed verify (erase_error)")
            }
        }
    }
}

impl Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = FlashError::ProgramToNonErased {
            segment: 3,
            page: 7,
        };
        let msg = e.to_string();
        assert!(msg.contains("segment 3"));
        assert!(msg.contains("page 7"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn out_of_range_segment_only() {
        let e = FlashError::OutOfRange {
            segment: 9,
            page: u32::MAX,
        };
        assert_eq!(e.to_string(), "segment index 9 out of range");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(FlashError::BadGeometry("zero banks"));
        assert!(e.to_string().contains("zero banks"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlashError>();
    }

    #[test]
    fn injected_fault_messages_name_status_bits() {
        let p = FlashError::ProgramFailed {
            segment: 2,
            page: 9,
        };
        assert!(p.to_string().contains("program_error"));
        let e = FlashError::EraseFailed { segment: 4 };
        assert!(e.to_string().contains("erase_error"));
        assert!(e.to_string().contains("segment 4"));
    }
}
