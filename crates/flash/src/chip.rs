//! A single Flash chip with the paper's Command User Interface.
//!
//! §2 of the paper: "A Flash chip normally operates in an EPROM-like read
//! only mode. All other functions are initiated by writing commands to an
//! internal Command User Interface (CUI). Commands exist for programming
//! and verifying bytes, erasing blocks, checking status, and suspending
//! long operations."
//!
//! This module models one byte-wide chip at that level of fidelity:
//! write-once bit semantics (programming can only clear bits), block-bulk
//! erase, per-block cycle counts, and suspendable long operations. The
//! aggregate [`crate::array::FlashArray`] applies the same rules per
//! 256-chip bank; unit tests cross-check the two.

use crate::error::FlashError;
use crate::geometry::FlashTimings;
use envy_sim::time::Ns;

/// Operating state of the chip's command interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipState {
    /// EPROM-like array read mode (the default).
    ReadArray,
    /// A byte program is in progress.
    Programming {
        /// Remaining busy time.
        remaining: Ns,
    },
    /// A block erase is in progress.
    Erasing {
        /// Block being erased.
        block: u32,
        /// Remaining busy time.
        remaining: Ns,
    },
    /// A long operation is suspended; the array is readable.
    Suspended {
        /// Block being erased when suspended (`None` for a suspended
        /// program).
        block: Option<u32>,
        /// Busy time left when the operation resumes.
        remaining: Ns,
    },
}

/// Status register bits, modeled after the Intel-style status word the
/// paper's chips expose.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Status {
    /// Device is ready for a new command.
    pub ready: bool,
    /// The last program failed verification (attempted to set a 0 bit
    /// back to 1 without an erase).
    pub program_error: bool,
    /// The last erase failed.
    pub erase_error: bool,
}

/// Commands accepted by the CUI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Return to array read mode.
    ReadArray,
    /// Program (AND) one byte at `addr`.
    Program {
        /// Byte address within the chip.
        addr: u32,
        /// Value to program; only 1→0 bit transitions take effect.
        value: u8,
    },
    /// Erase one block (all bytes to 0xFF).
    EraseBlock {
        /// Block index.
        block: u32,
    },
    /// Suspend an in-progress program or erase so the array can be read.
    Suspend,
    /// Resume a suspended operation.
    Resume,
    /// Clear the error bits of the status register.
    ClearStatus,
}

/// The result of issuing a command: how long the chip is busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Issued {
    /// Time until the chip accepts the next command.
    pub busy: Ns,
}

/// One byte-wide Flash chip divided into bulk-erase blocks.
///
/// # Example
///
/// ```
/// use envy_flash::chip::{Command, FlashChip};
/// use envy_flash::FlashTimings;
///
/// # fn main() -> Result<(), envy_flash::FlashError> {
/// let mut chip = FlashChip::new(4, 1024, FlashTimings::paper());
/// chip.issue(Command::Program { addr: 10, value: 0x5A })?;
/// chip.issue(Command::ReadArray)?;
/// assert_eq!(chip.read(10), 0x5A);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FlashChip {
    block_bytes: u32,
    data: Vec<u8>,
    erase_cycles: Vec<u64>,
    state: ChipState,
    status: Status,
    timings: FlashTimings,
    fail_next_program: bool,
    fail_next_erase: bool,
}

impl FlashChip {
    /// Create a chip with `blocks` erase blocks of `block_bytes` bytes,
    /// initially erased (all 0xFF).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(blocks: u32, block_bytes: u32, timings: FlashTimings) -> FlashChip {
        assert!(
            blocks > 0 && block_bytes > 0,
            "chip dimensions must be non-zero"
        );
        FlashChip {
            block_bytes,
            data: vec![0xFF; (blocks * block_bytes) as usize],
            erase_cycles: vec![0; blocks as usize],
            state: ChipState::ReadArray,
            status: Status {
                ready: true,
                ..Status::default()
            },
            timings,
            fail_next_program: false,
            fail_next_erase: false,
        }
    }

    /// Make the next `Program` command fail verify: the cell is written
    /// but cannot be trusted, and `program_error` is raised. Models a
    /// weak cell discovered at program time (test support for the
    /// controller's retry-then-remap path).
    pub fn inject_program_fault(&mut self) {
        self.fail_next_program = true;
    }

    /// Make the next `EraseBlock` command fail verify: the block is left
    /// indeterminate (all bytes `0x00`), the cycle is not counted, and
    /// `erase_error` is raised until cleared.
    pub fn inject_erase_fault(&mut self) {
        self.fail_next_erase = true;
    }

    /// Number of erase blocks.
    pub fn blocks(&self) -> u32 {
        self.erase_cycles.len() as u32
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u32 {
        self.data.len() as u32
    }

    /// Current command-interface state.
    pub fn state(&self) -> ChipState {
        self.state
    }

    /// Current status register.
    pub fn status(&self) -> Status {
        self.status
    }

    /// Program/erase cycles a block has sustained.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn cycles(&self, block: u32) -> u64 {
        self.erase_cycles[block as usize]
    }

    /// Read one byte in array mode.
    ///
    /// Reading is legal in `ReadArray` and `Suspended` states (the whole
    /// point of suspension). During a program or erase the chip returns
    /// status-like garbage on real hardware; here we return `0xFF` and set
    /// no error, since the eNVy controller never reads a busy chip.
    pub fn read(&self, addr: u32) -> u8 {
        match self.state {
            ChipState::ReadArray | ChipState::Suspended { .. } => self.data[addr as usize],
            _ => 0xFF,
        }
    }

    /// Complete any in-progress long operation (the simulated time has
    /// passed); used by callers that account for busy time externally.
    pub fn settle(&mut self) {
        match self.state {
            ChipState::Programming { .. } | ChipState::Erasing { .. } => {
                self.state = ChipState::ReadArray;
                self.status.ready = true;
            }
            _ => {}
        }
    }

    /// Issue a CUI command.
    ///
    /// Returns how long the chip is busy executing it. Long operations
    /// leave the chip in a busy state; callers either wait out the busy
    /// time and call [`FlashChip::settle`], or suspend.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::OutOfRange`] for bad addresses or block
    /// indices. Programming a byte that would require setting a cleared
    /// bit *succeeds at the interface level* but leaves the
    /// `program_error` status bit set and the cell unchanged beyond the
    /// AND, mirroring real program-verify behaviour.
    pub fn issue(&mut self, cmd: Command) -> Result<Issued, FlashError> {
        match cmd {
            Command::ReadArray => {
                if matches!(
                    self.state,
                    ChipState::ReadArray | ChipState::Suspended { .. }
                ) {
                    self.state = ChipState::ReadArray;
                }
                self.settle();
                self.state = ChipState::ReadArray;
                Ok(Issued { busy: Ns::ZERO })
            }
            Command::Program { addr, value } => {
                if addr as usize >= self.data.len() {
                    return Err(FlashError::OutOfRange {
                        segment: addr / self.block_bytes,
                        page: addr,
                    });
                }
                self.settle();
                let before = self.data[addr as usize];
                let after = before & value;
                self.data[addr as usize] = after;
                // Verify step: did we get the bits we asked for?
                if after != value {
                    self.status.program_error = true;
                }
                if self.fail_next_program {
                    self.fail_next_program = false;
                    self.status.program_error = true;
                }
                let block = addr / self.block_bytes;
                let busy = self.timings.program_at(self.erase_cycles[block as usize]);
                self.state = ChipState::Programming { remaining: busy };
                self.status.ready = false;
                Ok(Issued { busy })
            }
            Command::EraseBlock { block } => {
                if block >= self.blocks() {
                    return Err(FlashError::OutOfRange {
                        segment: block,
                        page: u32::MAX,
                    });
                }
                self.settle();
                let start = (block * self.block_bytes) as usize;
                let end = start + self.block_bytes as usize;
                if self.fail_next_erase {
                    self.fail_next_erase = false;
                    self.data[start..end].fill(0x00);
                    self.status.erase_error = true;
                    self.status.ready = true;
                    return Ok(Issued { busy: Ns::ZERO });
                }
                self.data[start..end].fill(0xFF);
                self.erase_cycles[block as usize] += 1;
                let busy = self.timings.erase_at(self.erase_cycles[block as usize]);
                self.state = ChipState::Erasing {
                    block,
                    remaining: busy,
                };
                self.status.ready = false;
                Ok(Issued { busy })
            }
            Command::Suspend => {
                match self.state {
                    ChipState::Programming { remaining } => {
                        self.state = ChipState::Suspended {
                            block: None,
                            remaining,
                        };
                        self.status.ready = true;
                    }
                    ChipState::Erasing { block, remaining } => {
                        self.state = ChipState::Suspended {
                            block: Some(block),
                            remaining,
                        };
                        self.status.ready = true;
                    }
                    _ => {}
                }
                Ok(Issued { busy: Ns::ZERO })
            }
            Command::Resume => {
                if let ChipState::Suspended { block, remaining } = self.state {
                    self.state = match block {
                        Some(block) => ChipState::Erasing { block, remaining },
                        None => ChipState::Programming { remaining },
                    };
                    self.status.ready = false;
                    Ok(Issued { busy: remaining })
                } else {
                    Ok(Issued { busy: Ns::ZERO })
                }
            }
            Command::ClearStatus => {
                self.status.program_error = false;
                self.status.erase_error = false;
                Ok(Issued { busy: Ns::ZERO })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> FlashChip {
        FlashChip::new(4, 256, FlashTimings::paper())
    }

    #[test]
    fn fresh_chip_is_erased() {
        let c = chip();
        assert_eq!(c.capacity(), 1024);
        assert_eq!(c.blocks(), 4);
        for a in [0, 511, 1023] {
            assert_eq!(c.read(a), 0xFF);
        }
        assert!(c.status().ready);
    }

    #[test]
    fn program_then_read() {
        let mut c = chip();
        let issued = c
            .issue(Command::Program {
                addr: 5,
                value: 0xA5,
            })
            .unwrap();
        assert_eq!(issued.busy, Ns::from_micros(4));
        assert!(!c.status().ready);
        c.issue(Command::ReadArray).unwrap();
        assert_eq!(c.read(5), 0xA5);
        assert!(c.status().ready);
        assert!(!c.status().program_error);
    }

    #[test]
    fn program_is_write_once_bits_only_clear() {
        let mut c = chip();
        c.issue(Command::Program {
            addr: 0,
            value: 0x0F,
        })
        .unwrap();
        // Attempt to set bits back to 1: the AND keeps them 0 and the
        // verify step flags an error.
        c.issue(Command::Program {
            addr: 0,
            value: 0xF0,
        })
        .unwrap();
        c.issue(Command::ReadArray).unwrap();
        assert_eq!(c.read(0), 0x00);
        assert!(c.status().program_error);
        c.issue(Command::ClearStatus).unwrap();
        assert!(!c.status().program_error);
    }

    #[test]
    fn overlapping_clear_programs_do_not_error() {
        let mut c = chip();
        c.issue(Command::Program {
            addr: 0,
            value: 0x0F,
        })
        .unwrap();
        // Clearing more bits is always legal.
        c.issue(Command::Program {
            addr: 0,
            value: 0x03,
        })
        .unwrap();
        assert!(!c.status().program_error);
        c.issue(Command::ReadArray).unwrap();
        assert_eq!(c.read(0), 0x03);
    }

    #[test]
    fn erase_restores_block_and_counts_cycles() {
        let mut c = chip();
        c.issue(Command::Program {
            addr: 300,
            value: 0x00,
        })
        .unwrap();
        assert_eq!(c.cycles(1), 0);
        let issued = c.issue(Command::EraseBlock { block: 1 }).unwrap();
        assert_eq!(issued.busy, Ns::from_millis(50));
        assert_eq!(c.cycles(1), 1);
        c.issue(Command::ReadArray).unwrap();
        assert_eq!(c.read(300), 0xFF);
        // Other blocks untouched.
        assert_eq!(c.cycles(0), 0);
    }

    #[test]
    fn erase_only_affects_target_block() {
        let mut c = chip();
        c.issue(Command::Program {
            addr: 0,
            value: 0x11,
        })
        .unwrap();
        c.issue(Command::EraseBlock { block: 1 }).unwrap();
        c.issue(Command::ReadArray).unwrap();
        assert_eq!(c.read(0), 0x11);
    }

    #[test]
    fn suspend_and_resume_erase() {
        let mut c = chip();
        c.issue(Command::EraseBlock { block: 0 }).unwrap();
        assert!(matches!(c.state(), ChipState::Erasing { .. }));
        c.issue(Command::Suspend).unwrap();
        assert!(matches!(
            c.state(),
            ChipState::Suspended { block: Some(0), .. }
        ));
        // Array readable while suspended: the whole point (§3.4 "long"
        // operations are suspended to service host accesses).
        assert_eq!(c.read(700), 0xFF);
        let resumed = c.issue(Command::Resume).unwrap();
        assert_eq!(resumed.busy, Ns::from_millis(50));
        assert!(matches!(c.state(), ChipState::Erasing { .. }));
    }

    #[test]
    fn suspend_program() {
        let mut c = chip();
        c.issue(Command::Program {
            addr: 1,
            value: 0x00,
        })
        .unwrap();
        c.issue(Command::Suspend).unwrap();
        assert!(matches!(
            c.state(),
            ChipState::Suspended { block: None, .. }
        ));
        assert!(c.status().ready);
        c.issue(Command::Resume).unwrap();
        assert!(matches!(c.state(), ChipState::Programming { .. }));
    }

    #[test]
    fn suspend_when_idle_is_noop() {
        let mut c = chip();
        c.issue(Command::Suspend).unwrap();
        assert_eq!(c.state(), ChipState::ReadArray);
        c.issue(Command::Resume).unwrap();
        assert_eq!(c.state(), ChipState::ReadArray);
    }

    #[test]
    fn out_of_range_program() {
        let mut c = chip();
        assert!(c
            .issue(Command::Program {
                addr: 1024,
                value: 0
            })
            .is_err());
    }

    #[test]
    fn out_of_range_erase() {
        let mut c = chip();
        assert!(c.issue(Command::EraseBlock { block: 4 }).is_err());
    }

    #[test]
    fn injected_program_fault_raises_status_bit() {
        let mut c = chip();
        c.inject_program_fault();
        c.issue(Command::Program {
            addr: 0,
            value: 0xF0,
        })
        .unwrap();
        assert!(c.status().program_error);
        c.issue(Command::ClearStatus).unwrap();
        assert!(!c.status().program_error);
        // The next program is back to normal.
        c.issue(Command::Program {
            addr: 1,
            value: 0xF0,
        })
        .unwrap();
        assert!(!c.status().program_error);
    }

    #[test]
    fn injected_erase_fault_leaves_block_indeterminate() {
        let mut c = chip();
        c.inject_erase_fault();
        c.issue(Command::EraseBlock { block: 0 }).unwrap();
        assert!(c.status().erase_error);
        assert_eq!(c.cycles(0), 0, "failed pulse does not count a cycle");
        c.issue(Command::ReadArray).unwrap();
        assert_eq!(c.read(0), 0x00);
        // Retry succeeds.
        c.issue(Command::ClearStatus).unwrap();
        c.issue(Command::EraseBlock { block: 0 }).unwrap();
        assert!(!c.status().erase_error);
        c.issue(Command::ReadArray).unwrap();
        assert_eq!(c.read(0), 0xFF);
        assert_eq!(c.cycles(0), 1);
    }

    #[test]
    fn wear_degradation_reflected_in_busy_time() {
        let t = FlashTimings {
            wear_slowdown: 1.0,
            rated_cycles: 10,
            ..FlashTimings::paper()
        };
        let mut c = FlashChip::new(1, 64, t);
        for _ in 0..10 {
            c.issue(Command::EraseBlock { block: 0 }).unwrap();
        }
        // Cycle count is 10 = rated; program should take 2x the base time.
        let issued = c.issue(Command::Program { addr: 0, value: 0 }).unwrap();
        assert_eq!(issued.busy, Ns::from_micros(8));
    }
}
