#![warn(missing_docs)]
//! The Flash memory substrate of the eNVy reproduction.
//!
//! eNVy (Wu & Zwaenepoel, ASPLOS '94) is built on NOR Flash organized as
//! wide memory banks: 256 byte-wide chips per bank, so a 256-byte page
//! transfers in a single memory cycle, and the smallest independently
//! erasable unit — a **segment** — is one erase block across every chip of
//! a bank (16 MB with 64 KB-block chips).
//!
//! This crate models that hierarchy at two levels:
//!
//! * [`chip::FlashChip`] — a single chip with the paper's Command User
//!   Interface (§2): an EPROM-like read mode plus explicit
//!   program/erase/verify/suspend commands, write-once semantics, and
//!   cycle-dependent wear.
//! * [`array::FlashArray`] — the aggregate bank/segment/page array the eNVy
//!   controller manages. Chips within a bank operate in lock-step for page
//!   transfers, so the array tracks page state per segment rather than
//!   instantiating thousands of chip objects; the timing and wear rules are
//!   identical to the chip model (asserted by tests).
//!
//! # Example
//!
//! ```
//! use envy_flash::{FlashArray, FlashGeometry, FlashTimings};
//!
//! # fn main() -> Result<(), envy_flash::FlashError> {
//! let geo = FlashGeometry::new(2, 8, 16, 256)?; // 2 banks, 8 segments
//! let mut array = FlashArray::new(geo, FlashTimings::paper(), true);
//!
//! let data = vec![0xAB; 256];
//! array.program_page(0, 0, Some(&data))?;
//! let mut out = vec![0; 256];
//! array.read_page(0, 0, Some(&mut out));
//! assert_eq!(out, data);
//! # Ok(())
//! # }
//! ```

pub mod array;
pub mod chip;
pub mod error;
pub mod geometry;

pub use array::{FlashArray, FlashFaults, FlashStats, PageState};
pub use chip::{ChipState, FlashChip};
pub use error::FlashError;
pub use geometry::{FlashGeometry, FlashTimings};
