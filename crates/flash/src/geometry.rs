//! Array geometry and device timing parameters.

use crate::error::FlashError;
use envy_sim::time::Ns;

/// Shape of a Flash array: banks, segments, pages.
///
/// In the paper's hardware (Figure 4, Figure 12), a bank is 256 byte-wide
/// chips; a *segment* — the smallest independently erasable unit — is one
/// erase block across every chip of a bank. The 2 GB system has 8 banks and
/// 128 segments of 65 536 × 256-byte pages (16 MB each).
///
/// Simulations may scale `pages_per_segment` down: cleaning behaviour
/// depends on utilization and locality, not on absolute segment size
/// (within the paper's own observation, Figure 10, that what matters is the
/// *number* of segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashGeometry {
    banks: u32,
    segments: u32,
    pages_per_segment: u32,
    page_bytes: u32,
    /// `log2(segments / banks)` when the per-bank segment count is a
    /// power of two (every shipped geometry), so [`FlashGeometry::bank_of`]
    /// — on the datapath of every Flash read — is a shift rather than two
    /// divisions.
    bank_shift: Option<u32>,
}

impl FlashGeometry {
    /// Create a geometry.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::BadGeometry`] if any dimension is zero or the
    /// segment count is not divisible by the bank count (each bank must
    /// hold the same number of erase-block rows).
    pub fn new(
        banks: u32,
        segments: u32,
        pages_per_segment: u32,
        page_bytes: u32,
    ) -> Result<FlashGeometry, FlashError> {
        if banks == 0 {
            return Err(FlashError::BadGeometry("bank count must be non-zero"));
        }
        if segments == 0 {
            return Err(FlashError::BadGeometry("segment count must be non-zero"));
        }
        if pages_per_segment == 0 {
            return Err(FlashError::BadGeometry(
                "pages per segment must be non-zero",
            ));
        }
        if page_bytes == 0 {
            return Err(FlashError::BadGeometry("page size must be non-zero"));
        }
        if !segments.is_multiple_of(banks) {
            return Err(FlashError::BadGeometry(
                "segment count must be divisible by bank count",
            ));
        }
        let per_bank = segments / banks;
        Ok(FlashGeometry {
            banks,
            segments,
            pages_per_segment,
            page_bytes,
            bank_shift: per_bank
                .is_power_of_two()
                .then(|| per_bank.trailing_zeros()),
        })
    }

    /// The paper's 2 GB configuration (Figure 12): 8 banks, 128 segments of
    /// 16 MB, 256-byte pages.
    pub fn paper_2gb() -> FlashGeometry {
        FlashGeometry::new(8, 128, 65_536, 256).expect("paper geometry is valid")
    }

    /// Number of banks.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Number of segments.
    pub fn segments(&self) -> u32 {
        self.segments
    }

    /// Pages in each segment.
    pub fn pages_per_segment(&self) -> u32 {
        self.pages_per_segment
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u32 {
        self.page_bytes
    }

    /// Segments per bank.
    pub fn segments_per_bank(&self) -> u32 {
        self.segments / self.banks
    }

    /// Which bank a segment lives in. Segments are laid out contiguously
    /// within banks, matching Figure 4 (blocks stacked within a bank).
    #[inline]
    pub fn bank_of(&self, segment: u32) -> u32 {
        match self.bank_shift {
            Some(s) => segment >> s,
            None => segment / self.segments_per_bank(),
        }
    }

    /// Total pages in the array.
    pub fn total_pages(&self) -> u64 {
        self.segments as u64 * self.pages_per_segment as u64
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// Bytes per segment.
    pub fn segment_bytes(&self) -> u64 {
        self.pages_per_segment as u64 * self.page_bytes as u64
    }
}

/// Per-operation device timings (Figure 12).
///
/// `read` and `write` are single memory-cycle times for the wide datapath;
/// `program` is the per-page Flash program time; `erase` is the segment
/// (block) erase time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashTimings {
    /// One read cycle (chip access).
    pub read: Ns,
    /// One write cycle on the wide bus (used for page transfers to SRAM).
    pub write: Ns,
    /// Program one page (all chips of a bank in parallel).
    pub program: Ns,
    /// Erase one segment.
    pub erase: Ns,
    /// Cycles each chip is rated for (used for lifetime estimates and the
    /// wear-degradation model).
    pub rated_cycles: u64,
    /// Fractional slow-down of `program` per rated lifetime consumed
    /// (e.g. `0.5` means programs take 1.5× `program` at `rated_cycles`).
    /// The paper observes real chips degrade far more slowly than their
    /// specifications guarantee; the default model is no degradation.
    pub wear_slowdown: f64,
}

impl FlashTimings {
    /// The paper's simulation parameters (Figure 12): 100 ns read/write,
    /// 4 µs program, 50 ms erase, 1 M-cycle parts.
    pub fn paper() -> FlashTimings {
        FlashTimings {
            read: Ns::from_nanos(100),
            write: Ns::from_nanos(100),
            program: Ns::from_micros(4),
            erase: Ns::from_millis(50),
            rated_cycles: 1_000_000,
            wear_slowdown: 0.0,
        }
    }

    /// Effective program time at a given cycle count, applying the wear
    /// degradation model.
    pub fn program_at(&self, cycles: u64) -> Ns {
        if self.wear_slowdown == 0.0 {
            return self.program;
        }
        let frac = cycles as f64 / self.rated_cycles as f64;
        let scaled = self.program.as_nanos() as f64 * (1.0 + self.wear_slowdown * frac);
        Ns::from_nanos(scaled as u64)
    }

    /// Effective erase time at a given cycle count, applying the wear
    /// degradation model.
    pub fn erase_at(&self, cycles: u64) -> Ns {
        if self.wear_slowdown == 0.0 {
            return self.erase;
        }
        let frac = cycles as f64 / self.rated_cycles as f64;
        let scaled = self.erase.as_nanos() as f64 * (1.0 + self.wear_slowdown * frac);
        Ns::from_nanos(scaled as u64)
    }
}

impl Default for FlashTimings {
    fn default() -> FlashTimings {
        FlashTimings::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_figure_12() {
        let g = FlashGeometry::paper_2gb();
        assert_eq!(g.banks(), 8);
        assert_eq!(g.segments(), 128);
        assert_eq!(g.segments_per_bank(), 16);
        assert_eq!(g.page_bytes(), 256);
        assert_eq!(g.segment_bytes(), 16 * 1024 * 1024); // 16 MB segments
        assert_eq!(g.total_bytes(), 2 * 1024 * 1024 * 1024); // 2 GB
    }

    #[test]
    fn bank_mapping_is_contiguous() {
        let g = FlashGeometry::paper_2gb();
        assert_eq!(g.bank_of(0), 0);
        assert_eq!(g.bank_of(15), 0);
        assert_eq!(g.bank_of(16), 1);
        assert_eq!(g.bank_of(127), 7);
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(FlashGeometry::new(0, 8, 16, 256).is_err());
        assert!(FlashGeometry::new(2, 0, 16, 256).is_err());
        assert!(FlashGeometry::new(2, 8, 0, 256).is_err());
        assert!(FlashGeometry::new(2, 8, 16, 0).is_err());
    }

    #[test]
    fn rejects_indivisible_banks() {
        let err = FlashGeometry::new(3, 8, 16, 256).unwrap_err();
        assert!(matches!(err, FlashError::BadGeometry(_)));
    }

    #[test]
    fn paper_timings_match_figure_12() {
        let t = FlashTimings::paper();
        assert_eq!(t.read, Ns::from_nanos(100));
        assert_eq!(t.write, Ns::from_nanos(100));
        assert_eq!(t.program, Ns::from_micros(4));
        assert_eq!(t.erase, Ns::from_millis(50));
        assert_eq!(t.rated_cycles, 1_000_000);
    }

    #[test]
    fn no_degradation_by_default() {
        let t = FlashTimings::paper();
        assert_eq!(t.program_at(0), t.program);
        assert_eq!(t.program_at(1_000_000), t.program);
        assert_eq!(t.erase_at(999_999), t.erase);
    }

    #[test]
    fn wear_degradation_scales_linearly() {
        let t = FlashTimings {
            wear_slowdown: 1.0,
            ..FlashTimings::paper()
        };
        assert_eq!(t.program_at(0), t.program);
        assert_eq!(t.program_at(500_000), t.program + t.program / 2);
        assert_eq!(t.program_at(1_000_000), t.program * 2);
        assert_eq!(t.erase_at(1_000_000), t.erase * 2);
    }
}
