//! Randomized test: the Flash array's page state machine against a model.
//!
//! Random program/invalidate/erase sequences must keep the per-segment
//! valid/invalid/erased counts consistent with an explicit model, and
//! illegal transitions must be rejected exactly when the model says so.

use envy_flash::{FlashArray, FlashGeometry, FlashTimings, PageState};
use envy_sim::check::{cases, Gen};

#[derive(Debug, Clone)]
enum Op {
    Program { seg: u32, page: u32 },
    Invalidate { seg: u32, page: u32 },
    Erase { seg: u32 },
}

const SEGS: u32 = 4;
const PPS: u32 = 8;

fn gen_op(g: &mut Gen) -> Op {
    match g.below(3) {
        0 => Op::Program {
            seg: g.below(SEGS as u64) as u32,
            page: g.below(PPS as u64) as u32,
        },
        1 => Op::Invalidate {
            seg: g.below(SEGS as u64) as u32,
            page: g.below(PPS as u64) as u32,
        },
        _ => Op::Erase {
            seg: g.below(SEGS as u64) as u32,
        },
    }
}

#[test]
fn array_matches_model() {
    cases(0xF1A5_4001, 128, |g| {
        let ops = g.vec_of(1, 200, gen_op);
        let geo = FlashGeometry::new(2, SEGS, PPS, 16).unwrap();
        let mut array = FlashArray::new(geo, FlashTimings::paper(), false);
        let mut model = vec![[PageState::Erased; PPS as usize]; SEGS as usize];
        let mut cycles = vec![0u64; SEGS as usize];

        for op in ops {
            match op {
                Op::Program { seg, page } => {
                    let legal = model[seg as usize][page as usize] == PageState::Erased;
                    let got = array.program_page(seg, page, None);
                    assert_eq!(got.is_ok(), legal, "{op:?}");
                    if legal {
                        model[seg as usize][page as usize] = PageState::Valid;
                    }
                }
                Op::Invalidate { seg, page } => {
                    let legal = model[seg as usize][page as usize] == PageState::Valid;
                    let got = array.invalidate_page(seg, page);
                    assert_eq!(got.is_ok(), legal, "{op:?}");
                    if legal {
                        model[seg as usize][page as usize] = PageState::Invalid;
                    }
                }
                Op::Erase { seg } => {
                    let legal = model[seg as usize].iter().all(|&s| s != PageState::Valid);
                    let got = array.erase_segment(seg);
                    assert_eq!(got.is_ok(), legal, "{op:?}");
                    if legal {
                        model[seg as usize] = [PageState::Erased; PPS as usize];
                        cycles[seg as usize] += 1;
                    }
                }
            }
            // Counts agree with the model after every step.
            for seg in 0..SEGS {
                let valid = model[seg as usize]
                    .iter()
                    .filter(|&&s| s == PageState::Valid)
                    .count() as u32;
                let invalid = model[seg as usize]
                    .iter()
                    .filter(|&&s| s == PageState::Invalid)
                    .count() as u32;
                assert_eq!(array.valid_pages(seg), valid);
                assert_eq!(array.invalid_pages(seg), invalid);
                assert_eq!(array.erased_pages(seg), PPS - valid - invalid);
                assert_eq!(array.erase_cycles(seg), cycles[seg as usize]);
            }
        }
    });
}

#[test]
fn data_mode_preserves_last_programmed_bytes() {
    cases(0xF1A5_4002, 64, |g| {
        let rounds = g.bytes(1, 20);
        let geo = FlashGeometry::new(1, 2, 4, 8).unwrap();
        let mut array = FlashArray::new(geo, FlashTimings::paper(), true);
        for (i, &byte) in rounds.iter().enumerate() {
            let page = (i % 4) as u32;
            if array.page_state(0, page) != PageState::Erased {
                if array.page_state(0, page) == PageState::Valid {
                    array.invalidate_page(0, page).unwrap();
                }
                if array.valid_pages(0) == 0 {
                    array.erase_segment(0).unwrap();
                }
            }
            if array.page_state(0, page) == PageState::Erased {
                let data = [byte; 8];
                array.program_page(0, page, Some(&data)).unwrap();
                let mut out = [0u8; 8];
                array.read_page(0, page, Some(&mut out)).unwrap();
                assert_eq!(out, data);
            }
        }
    });
}
