//! Property test: the Flash array's page state machine against a model.
//!
//! Random program/invalidate/erase sequences must keep the per-segment
//! valid/invalid/erased counts consistent with an explicit model, and
//! illegal transitions must be rejected exactly when the model says so.

use envy_flash::{FlashArray, FlashGeometry, FlashTimings, PageState};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Program { seg: u32, page: u32 },
    Invalidate { seg: u32, page: u32 },
    Erase { seg: u32 },
}

const SEGS: u32 = 4;
const PPS: u32 = 8;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SEGS, 0..PPS).prop_map(|(seg, page)| Op::Program { seg, page }),
        (0..SEGS, 0..PPS).prop_map(|(seg, page)| Op::Invalidate { seg, page }),
        (0..SEGS).prop_map(|seg| Op::Erase { seg }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn array_matches_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let geo = FlashGeometry::new(2, SEGS, PPS, 16).unwrap();
        let mut array = FlashArray::new(geo, FlashTimings::paper(), false);
        let mut model = vec![[PageState::Erased; PPS as usize]; SEGS as usize];
        let mut cycles = vec![0u64; SEGS as usize];

        for op in ops {
            match op {
                Op::Program { seg, page } => {
                    let legal = model[seg as usize][page as usize] == PageState::Erased;
                    let got = array.program_page(seg, page, None);
                    prop_assert_eq!(got.is_ok(), legal);
                    if legal {
                        model[seg as usize][page as usize] = PageState::Valid;
                    }
                }
                Op::Invalidate { seg, page } => {
                    let legal = model[seg as usize][page as usize] == PageState::Valid;
                    let got = array.invalidate_page(seg, page);
                    prop_assert_eq!(got.is_ok(), legal);
                    if legal {
                        model[seg as usize][page as usize] = PageState::Invalid;
                    }
                }
                Op::Erase { seg } => {
                    let legal = model[seg as usize]
                        .iter()
                        .all(|&s| s != PageState::Valid);
                    let got = array.erase_segment(seg);
                    prop_assert_eq!(got.is_ok(), legal);
                    if legal {
                        model[seg as usize] = [PageState::Erased; PPS as usize];
                        cycles[seg as usize] += 1;
                    }
                }
            }
            // Counts agree with the model after every step.
            for seg in 0..SEGS {
                let valid = model[seg as usize].iter().filter(|&&s| s == PageState::Valid).count() as u32;
                let invalid = model[seg as usize].iter().filter(|&&s| s == PageState::Invalid).count() as u32;
                prop_assert_eq!(array.valid_pages(seg), valid);
                prop_assert_eq!(array.invalid_pages(seg), invalid);
                prop_assert_eq!(array.erased_pages(seg), PPS - valid - invalid);
                prop_assert_eq!(array.erase_cycles(seg), cycles[seg as usize]);
            }
        }
    }

    #[test]
    fn data_mode_preserves_last_programmed_bytes(
        rounds in prop::collection::vec(any::<u8>(), 1..20)
    ) {
        let geo = FlashGeometry::new(1, 2, 4, 8).unwrap();
        let mut array = FlashArray::new(geo, FlashTimings::paper(), true);
        for (i, &byte) in rounds.iter().enumerate() {
            let page = (i % 4) as u32;
            if array.page_state(0, page) != PageState::Erased {
                if array.page_state(0, page) == PageState::Valid {
                    array.invalidate_page(0, page).unwrap();
                }
                if array.valid_pages(0) == 0 {
                    array.erase_segment(0).unwrap();
                }
            }
            if array.page_state(0, page) == PageState::Erased {
                let data = [byte; 8];
                array.program_page(0, page, Some(&data)).unwrap();
                let mut out = [0u8; 8];
                array.read_page(0, page, Some(&mut out)).unwrap();
                prop_assert_eq!(out, data);
            }
        }
    }
}
