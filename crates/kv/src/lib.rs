#![warn(missing_docs)]
//! # envy-kv — a key-value store over the eNVy array
//!
//! The canonical NVMM application is key-value serving, and §1 of the
//! paper argues that a word-addressable non-volatile array lets such an
//! application keep its *entire* data structure in stable storage. This
//! crate composes the two persistent primitives the workspace already
//! has into exactly that:
//!
//! * an [`envy_btree::BTree`] index mapping `key: u64` to the address of
//!   its record, and
//! * an [`envy_heap::Arena`] holding the variable-size records
//!   themselves (`len: u32 LE` followed by the value bytes).
//!
//! Both live inside one region of a single [`Memory`], laid out as:
//!
//! ```text
//! region + 0                a 64-byte header (magic, lengths, live count)
//! region + 64               the B-Tree index (¼ of the region)
//! region + 64 + index_len   the record arena (the rest)
//! ```
//!
//! Every piece of state is in the array — a [`KvStore`] handle is just
//! cached header words, and [`KvStore::open`] reattaches after a crash,
//! restart, or transaction rollback. Because the store works over *any*
//! [`Memory`], running it over [`envy_core::TxnMemory`] makes a
//! multi-operation KV transaction ride the store's ACID machinery: all
//! index and record writes of a put/delete land in the transaction's
//! write set and revert together on abort.
//!
//! Deletes are lazy at the index level (see [`envy_btree::BTree::delete`])
//! but the record's arena block is freed eagerly, so value space is
//! recycled even though index node pages are not.
//!
//! ```
//! use envy_core::VecMemory;
//! use envy_kv::KvStore;
//!
//! # fn main() -> Result<(), envy_kv::KvError> {
//! let mut mem = VecMemory::new(1024 * 1024);
//! let mut kv = KvStore::create(&mut mem, 0, 1024 * 1024)?;
//! kv.put(&mut mem, 7, b"seven")?;
//! assert_eq!(kv.get(&mut mem, 7)?.as_deref(), Some(&b"seven"[..]));
//! assert_eq!(kv.scan(&mut mem, 0, 10)?.len(), 1);
//! assert!(kv.delete(&mut mem, 7)?);
//! assert_eq!(kv.get(&mut mem, 7)?, None);
//! # Ok(())
//! # }
//! ```

use envy_btree::{BTree, BTreeError};
use envy_core::{EnvyError, Memory};
use envy_heap::{Arena, HeapError};
use std::error::Error;
use std::fmt;

const MAGIC: u64 = 0x654E_5679_4B56_7374; // "eNVyKVst"
const HEADER: u64 = 64;
/// Bytes of record framing ahead of the value: its length as `u32` LE.
const RECORD_HEADER: u64 = 4;

/// Largest value a record may hold, in bytes. Chosen so the largest
/// wire-visible reply (a full scan page of maximum-size values) stays
/// comfortably under the protocol's 1 MiB frame cap.
pub const MAX_VALUE: usize = 4096;

/// Errors from KV operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The region does not contain a KV store.
    BadMagic,
    /// The index or record region cannot hold the new record.
    OutOfSpace,
    /// The value exceeds [`MAX_VALUE`].
    ValueTooLarge {
        /// The offending value length.
        len: usize,
    },
    /// Stored state contradicts itself (an index entry pointing at a
    /// non-block, an impossible record length, …).
    Corrupt {
        /// What was found to be inconsistent.
        what: &'static str,
        /// The offending address or size.
        addr: u64,
    },
    /// An error from the underlying memory (for a store over
    /// [`envy_core::TxnMemory`] this is where transaction conflicts and
    /// ownership refusals surface).
    Memory(EnvyError),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::BadMagic => write!(f, "region does not contain a kv store"),
            KvError::OutOfSpace => write!(f, "kv region out of space"),
            KvError::ValueTooLarge { len } => {
                write!(f, "value of {len} bytes exceeds the {MAX_VALUE}-byte cap")
            }
            KvError::Corrupt { what, addr } => write!(f, "kv state corrupt: {what} ({addr:#x})"),
            KvError::Memory(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl Error for KvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KvError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EnvyError> for KvError {
    fn from(e: EnvyError) -> KvError {
        KvError::Memory(e)
    }
}

impl From<BTreeError> for KvError {
    fn from(e: BTreeError) -> KvError {
        match e {
            BTreeError::BadMagic => KvError::BadMagic,
            BTreeError::OutOfSpace => KvError::OutOfSpace,
            // Bulk loading is not part of the KV surface; an ordering
            // error out of the index means its state is inconsistent.
            BTreeError::NotSorted => KvError::Corrupt {
                what: "index returned unsorted entries",
                addr: 0,
            },
            BTreeError::Memory(e) => KvError::Memory(e),
        }
    }
}

impl From<HeapError> for KvError {
    fn from(e: HeapError) -> KvError {
        match e {
            HeapError::BadMagic => KvError::BadMagic,
            HeapError::OutOfSpace => KvError::OutOfSpace,
            HeapError::NotABlock { addr } => KvError::Corrupt {
                what: "index entry does not point at an allocated record",
                addr,
            },
            HeapError::BadSize { size } => KvError::Corrupt {
                what: "impossible record allocation size",
                addr: size,
            },
            HeapError::RecordTooLarge { len } => KvError::ValueTooLarge { len },
            HeapError::Memory(e) => KvError::Memory(e),
        }
    }
}

/// A key-value store in a region of linear memory: a B-Tree index over
/// an arena of length-prefixed records. See the crate docs for layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvStore {
    region: u64,
    total_len: u64,
    index_len: u64,
    count: u64,
    tree: BTree,
    arena: Arena,
}

impl KvStore {
    /// Create a fresh store occupying `[region, region + len)`. A
    /// quarter of the region indexes, the rest holds records.
    ///
    /// # Errors
    ///
    /// [`KvError::OutOfSpace`] if the region is too small for the
    /// header plus a one-node index plus a minimal arena; memory errors.
    pub fn create<M: Memory>(mem: &mut M, region: u64, len: u64) -> Result<KvStore, KvError> {
        // Each live key costs ~16 B of leaf entry (~33 B at 2/3 node
        // occupancy) in the index vs a ≥ 24 B record in the arena, so a
        // 1:3 split comfortably favors records while keeping the index
        // from becoming the binding constraint under churn (its bump
        // allocator never reclaims nodes).
        let index_len = (len / 4) & !7;
        if len < HEADER + index_len || index_len < 1024 {
            return Err(KvError::OutOfSpace);
        }
        let heap_len = len - HEADER - index_len;
        let tree = BTree::create(mem, region + HEADER, index_len)?;
        let arena = Arena::create(mem, region + HEADER + index_len, heap_len)?;
        let kv = KvStore {
            region,
            total_len: len,
            index_len,
            count: 0,
            tree,
            arena,
        };
        kv.write_header(mem)?;
        Ok(kv)
    }

    /// Re-open a store previously created in this region.
    ///
    /// # Errors
    ///
    /// [`KvError::BadMagic`] if the header is absent or corrupt.
    pub fn open<M: Memory>(mem: &mut M, region: u64) -> Result<KvStore, KvError> {
        let mut header = [0u8; HEADER as usize];
        mem.read(region, &mut header)?;
        let word = |i: usize| u64::from_le_bytes(header[i * 8..i * 8 + 8].try_into().expect("8"));
        if word(0) != MAGIC {
            return Err(KvError::BadMagic);
        }
        let total_len = word(1);
        let index_len = word(2);
        let count = word(3);
        let tree = BTree::open(mem, region + HEADER)?;
        let arena = Arena::open(mem, region + HEADER + index_len)?;
        Ok(KvStore {
            region,
            total_len,
            index_len,
            count,
            tree,
            arena,
        })
    }

    fn write_header<M: Memory>(&self, mem: &mut M) -> Result<(), KvError> {
        let mut header = [0u8; HEADER as usize];
        header[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        header[8..16].copy_from_slice(&self.total_len.to_le_bytes());
        header[16..24].copy_from_slice(&self.index_len.to_le_bytes());
        header[24..32].copy_from_slice(&self.count.to_le_bytes());
        mem.write(self.region, &header)?;
        Ok(())
    }

    /// Number of live keys.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Read one record, validating its length prefix against the cap.
    fn read_record<M: Memory>(mem: &mut M, addr: u64) -> Result<Vec<u8>, KvError> {
        let mut len_bytes = [0u8; RECORD_HEADER as usize];
        mem.read(addr, &mut len_bytes)?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_VALUE {
            return Err(KvError::Corrupt {
                what: "record length prefix exceeds the value cap",
                addr,
            });
        }
        let mut value = vec![0u8; len];
        mem.read(addr + RECORD_HEADER, &mut value)?;
        Ok(value)
    }

    /// Look up a key.
    ///
    /// # Errors
    ///
    /// [`KvError::Corrupt`] on an impossible stored record; memory
    /// errors.
    pub fn get<M: Memory>(&self, mem: &mut M, key: u64) -> Result<Option<Vec<u8>>, KvError> {
        match self.tree.get(mem, key)? {
            Some(addr) => Ok(Some(Self::read_record(mem, addr)?)),
            None => Ok(None),
        }
    }

    /// Insert or replace a key's value. On replace the old record's
    /// arena block is freed after the index points at the new one.
    ///
    /// # Errors
    ///
    /// [`KvError::ValueTooLarge`] beyond [`MAX_VALUE`];
    /// [`KvError::OutOfSpace`] when index or arena is exhausted; memory
    /// errors.
    pub fn put<M: Memory>(&mut self, mem: &mut M, key: u64, value: &[u8]) -> Result<(), KvError> {
        if value.len() > MAX_VALUE {
            return Err(KvError::ValueTooLarge { len: value.len() });
        }
        let addr = self.arena.alloc(mem, RECORD_HEADER + value.len() as u64)?;
        let mut record = Vec::with_capacity(RECORD_HEADER as usize + value.len());
        record.extend_from_slice(&(value.len() as u32).to_le_bytes());
        record.extend_from_slice(value);
        mem.write(addr, &record)?;
        let old = match self.tree.insert(mem, key, addr) {
            Ok(old) => old,
            Err(e) => {
                // The index never learned about the record: hand its
                // block back so a full index does not leak arena space.
                let _ = self.arena.free(mem, addr);
                return Err(e.into());
            }
        };
        match old {
            Some(old_addr) => self.arena.free(mem, old_addr)?,
            None => {
                self.count += 1;
                self.write_header(mem)?;
            }
        }
        Ok(())
    }

    /// Delete a key; returns whether it existed. The index entry goes
    /// first, then the record's block returns to the arena free list.
    ///
    /// # Errors
    ///
    /// [`KvError::Corrupt`] if the index pointed at a non-block; memory
    /// errors.
    pub fn delete<M: Memory>(&mut self, mem: &mut M, key: u64) -> Result<bool, KvError> {
        match self.tree.delete(mem, key)? {
            Some(addr) => {
                self.arena.free(mem, addr)?;
                self.count -= 1;
                self.write_header(mem)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Ordered range read: up to `limit` `(key, value)` records with
    /// `key >= start`, ascending (YCSB workload E's scan).
    ///
    /// # Errors
    ///
    /// [`KvError::Corrupt`] on an impossible stored record; memory
    /// errors.
    pub fn scan<M: Memory>(
        &self,
        mem: &mut M,
        start: u64,
        limit: usize,
    ) -> Result<Vec<(u64, Vec<u8>)>, KvError> {
        let entries = self.tree.scan(mem, start, limit)?;
        let mut out = Vec::with_capacity(entries.len());
        for (key, addr) in entries {
            out.push((key, Self::read_record(mem, addr)?));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use envy_core::VecMemory;
    use std::collections::BTreeMap;

    fn mem() -> VecMemory {
        VecMemory::new(4 * 1024 * 1024)
    }

    #[test]
    fn create_put_get_roundtrip() {
        let mut m = mem();
        let mut kv = KvStore::create(&mut m, 0, 1024 * 1024).unwrap();
        assert_eq!(kv.get(&mut m, 1).unwrap(), None);
        kv.put(&mut m, 1, b"hello").unwrap();
        kv.put(&mut m, 2, &[]).unwrap();
        assert_eq!(kv.get(&mut m, 1).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(kv.get(&mut m, 2).unwrap().as_deref(), Some(&[][..]));
        assert_eq!(kv.count(), 2);
    }

    #[test]
    fn replace_frees_old_record() {
        let mut m = mem();
        let mut kv = KvStore::create(&mut m, 0, 256 * 1024).unwrap();
        // Large values; without freeing replaced records the arena
        // would exhaust long before 2_000 iterations.
        for i in 0..2_000u64 {
            let value = vec![(i % 251) as u8; 1024];
            kv.put(&mut m, 1, &value).unwrap();
        }
        assert_eq!(kv.count(), 1);
        assert_eq!(
            kv.get(&mut m, 1).unwrap().unwrap(),
            vec![(1_999 % 251) as u8; 1024]
        );
    }

    #[test]
    fn delete_frees_and_reports_existence() {
        let mut m = mem();
        let mut kv = KvStore::create(&mut m, 0, 256 * 1024).unwrap();
        assert!(!kv.delete(&mut m, 9).unwrap());
        for round in 0..500u64 {
            kv.put(&mut m, 9, &vec![round as u8; 2048]).unwrap();
            assert!(kv.delete(&mut m, 9).unwrap());
            assert_eq!(kv.get(&mut m, 9).unwrap(), None);
        }
        assert_eq!(kv.count(), 0);
    }

    #[test]
    fn scan_is_ordered_and_bounded() {
        let mut m = mem();
        let mut kv = KvStore::create(&mut m, 0, 1024 * 1024).unwrap();
        for i in (0..200u64).rev() {
            kv.put(&mut m, i * 2, &i.to_le_bytes()).unwrap();
        }
        let got = kv.scan(&mut m, 5, 4).unwrap();
        let keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![6, 8, 10, 12]);
        assert_eq!(got[0].1, 3u64.to_le_bytes());
        assert_eq!(kv.scan(&mut m, 0, 1_000).unwrap().len(), 200);
        assert_eq!(kv.scan(&mut m, 399, 10).unwrap(), vec![]);
    }

    #[test]
    fn value_cap_enforced() {
        let mut m = mem();
        let mut kv = KvStore::create(&mut m, 0, 1024 * 1024).unwrap();
        kv.put(&mut m, 1, &vec![0u8; MAX_VALUE]).unwrap();
        let err = kv.put(&mut m, 2, &vec![0u8; MAX_VALUE + 1]).unwrap_err();
        assert_eq!(err, KvError::ValueTooLarge { len: MAX_VALUE + 1 });
    }

    #[test]
    fn open_reattaches() {
        let mut m = mem();
        let mut kv = KvStore::create(&mut m, 4096, 512 * 1024).unwrap();
        for i in 0..300u64 {
            kv.put(&mut m, i, &vec![i as u8; (i % 64) as usize])
                .unwrap();
        }
        kv.delete(&mut m, 7).unwrap();
        let reopened = KvStore::open(&mut m, 4096).unwrap();
        assert_eq!(reopened, kv);
        assert_eq!(reopened.get(&mut m, 7).unwrap(), None);
        assert_eq!(
            reopened.get(&mut m, 299).unwrap().unwrap(),
            vec![43u8; 299 % 64]
        );
    }

    #[test]
    fn open_rejects_garbage() {
        let mut m = mem();
        assert_eq!(KvStore::open(&mut m, 0).unwrap_err(), KvError::BadMagic);
    }

    #[test]
    fn arena_exhaustion_is_clean_and_recoverable() {
        let mut m = mem();
        // Tiny region: the arena fills after a handful of 1 KiB records.
        let mut kv = KvStore::create(&mut m, 0, 16 * 1024).unwrap();
        let mut stored = 0u64;
        let err = loop {
            match kv.put(&mut m, stored, &vec![1u8; 1024]) {
                Ok(()) => stored += 1,
                Err(e) => break e,
            }
        };
        assert_eq!(err, KvError::OutOfSpace);
        assert!(stored > 0);
        // Everything stored before the failure is intact, and deleting
        // one record makes room again.
        for i in 0..stored {
            assert!(kv.get(&mut m, i).unwrap().is_some());
        }
        assert!(kv.delete(&mut m, 0).unwrap());
        kv.put(&mut m, 100, &vec![2u8; 1024]).unwrap();
    }

    #[test]
    fn differential_vs_btreemap_model() {
        let mut m = mem();
        let mut kv = KvStore::create(&mut m, 0, 2 * 1024 * 1024).unwrap();
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut rng = envy_sim::rng::Rng::seed_from(0x6B76);
        for _ in 0..5_000 {
            let key = rng.below(400);
            match rng.below(4) {
                0 | 1 => {
                    let value = vec![rng.below(256) as u8; rng.below(200) as usize];
                    kv.put(&mut m, key, &value).unwrap();
                    model.insert(key, value);
                }
                2 => {
                    let expected = model.remove(&key).is_some();
                    assert_eq!(kv.delete(&mut m, key).unwrap(), expected);
                }
                _ => {
                    let limit = rng.below(12) as usize;
                    let expected: Vec<(u64, Vec<u8>)> = model
                        .range(key..)
                        .take(limit)
                        .map(|(k, v)| (*k, v.clone()))
                        .collect();
                    assert_eq!(kv.scan(&mut m, key, limit).unwrap(), expected);
                }
            }
            assert_eq!(kv.count(), model.len() as u64);
        }
        for (k, v) in &model {
            assert_eq!(kv.get(&mut m, *k).unwrap().as_ref(), Some(v));
        }
    }

    #[test]
    fn works_over_envy_store() {
        use envy_core::{EnvyConfig, EnvyStore};
        let config = EnvyConfig::small_test();
        let mut store = EnvyStore::new(config).unwrap();
        let len = store.size();
        let mut kv = KvStore::create(&mut store, 0, len).unwrap();
        for i in 0..200u64 {
            kv.put(&mut store, i, &vec![i as u8; 100]).unwrap();
        }
        for i in 0..200u64 {
            assert_eq!(kv.get(&mut store, i).unwrap().unwrap(), vec![i as u8; 100]);
        }
        store.check_invariants().unwrap();
    }

    #[test]
    fn txn_abort_reverts_everything() {
        use envy_core::{EnvyConfig, EnvyStore, TxnMemory};
        let config = EnvyConfig::small_test();
        let mut store = EnvyStore::new(config).unwrap();
        let len = store.size();
        let mut kv = KvStore::create(&mut store, 0, len).unwrap();
        kv.put(&mut store, 1, b"committed").unwrap();

        // A transaction that replaces key 1, inserts key 2, deletes
        // nothing — then aborts. Every byte must revert.
        let txn = store.txn_begin().unwrap();
        {
            let mut tm = TxnMemory::new(&mut store, txn);
            let mut txn_kv = KvStore::open(&mut tm, 0).unwrap();
            txn_kv.put(&mut tm, 1, b"speculative").unwrap();
            txn_kv.put(&mut tm, 2, b"phantom").unwrap();
            assert_eq!(
                txn_kv.get(&mut tm, 1).unwrap().as_deref(),
                Some(&b"speculative"[..])
            );
        }
        store.txn_abort(txn).unwrap();

        let after = KvStore::open(&mut store, 0).unwrap();
        assert_eq!(
            after.get(&mut store, 1).unwrap().as_deref(),
            Some(&b"committed"[..])
        );
        assert_eq!(after.get(&mut store, 2).unwrap(), None);
        assert_eq!(after.count(), 1);
    }

    #[test]
    fn txn_commit_persists() {
        use envy_core::{EnvyConfig, EnvyStore, TxnMemory};
        let config = EnvyConfig::small_test();
        let mut store = EnvyStore::new(config).unwrap();
        let len = store.size();
        let mut kv = KvStore::create(&mut store, 0, len).unwrap();

        let txn = store.txn_begin().unwrap();
        {
            let mut tm = TxnMemory::new(&mut store, txn);
            let mut txn_kv = KvStore::open(&mut tm, 0).unwrap();
            txn_kv.put(&mut tm, 10, b"durable").unwrap();
        }
        store.txn_commit(txn).unwrap();

        let after = KvStore::open(&mut store, 0).unwrap();
        assert_eq!(
            after.get(&mut store, 10).unwrap().as_deref(),
            Some(&b"durable"[..])
        );
    }
}
