#![warn(missing_docs)]
//! # envy-heap — persistent in-memory data structures over eNVy
//!
//! §1 of the paper argues that word-addressable non-volatile memory lets
//! applications keep their data structures *directly* in stable storage
//! ("substantial reductions in code size and in instruction pathlengths"),
//! and §7 points at the main-memory database work (Starburst) that
//! benefits. This crate supplies the two primitives such applications
//! need on top of the raw array:
//!
//! * [`Arena`] — a persistent free-list allocator: `alloc`/`free` inside
//!   a region of the array, with all metadata stored in the array itself
//!   so the heap survives restarts and power failures.
//! * [`Log`] — a crash-safe append-only record log with per-record
//!   checksums: replay stops at the first torn or corrupt record, the
//!   classic write-ahead-log recovery contract.
//!
//! Both work over any [`envy_core::Memory`] — plain RAM for tests, an
//! [`envy_core::EnvyStore`] for the real thing.
//!
//! ```
//! use envy_core::{Memory, VecMemory};
//! use envy_heap::Arena;
//!
//! # fn main() -> Result<(), envy_heap::HeapError> {
//! let mut mem = VecMemory::new(64 * 1024);
//! let mut arena = Arena::create(&mut mem, 0, 64 * 1024)?;
//! let addr = arena.alloc(&mut mem, 100)?;
//! mem.write(addr, b"persistent bytes!")?;
//! arena.free(&mut mem, addr)?;
//! # Ok(())
//! # }
//! ```

mod arena;
mod crc;
mod log;

pub use arena::{Arena, ArenaStats};
pub use crc::crc32;
pub use log::{Log, LogIter, LogRecord};

use envy_core::EnvyError;
use std::error::Error;
use std::fmt;

/// Errors from the persistent heap structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// The region does not contain the expected structure.
    BadMagic,
    /// The region cannot satisfy the request.
    OutOfSpace,
    /// `free` was called on an address that is not an allocated block.
    NotABlock {
        /// The offending address.
        addr: u64,
    },
    /// An allocation size was zero or absurd.
    BadSize {
        /// The requested size.
        size: u64,
    },
    /// A record is too large for the log region.
    RecordTooLarge {
        /// The record length.
        len: usize,
    },
    /// An error from the underlying memory.
    Memory(EnvyError),
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::BadMagic => write!(f, "region does not contain this structure"),
            HeapError::OutOfSpace => write!(f, "region out of space"),
            HeapError::NotABlock { addr } => {
                write!(f, "address {addr:#x} is not an allocated block")
            }
            HeapError::BadSize { size } => write!(f, "invalid allocation size {size}"),
            HeapError::RecordTooLarge { len } => {
                write!(f, "record of {len} bytes exceeds the log region")
            }
            HeapError::Memory(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl Error for HeapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HeapError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EnvyError> for HeapError {
    fn from(e: EnvyError) -> HeapError {
        HeapError::Memory(e)
    }
}
