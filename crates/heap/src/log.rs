//! A crash-safe append-only record log.
//!
//! The write-ahead-log primitive the paper's §6 transaction discussion
//! assumes applications build ("traditional transaction processing
//! systems use some sort of software controlled logging/checkpointing
//! procedure"). Records carry a CRC-32; replay after a crash stops at
//! the first record that fails validation — a torn append is simply
//! absent, never half-applied.
//!
//! Layout:
//!
//! ```text
//! log header (32 B): magic, region_len, tail offset, record count
//! record: len u32, crc32 u32, payload (padded to 8)
//! ```
//!
//! The record is written before the header's tail pointer advances, so a
//! crash between the two leaves the old tail — and the half-written
//! record invisible. (On eNVy the 8-byte header update is a single
//! atomic word store, exactly the in-place update the array provides.)

use crate::crc::crc32;
use crate::HeapError;
use envy_core::Memory;

const MAGIC: u64 = 0x654E_5679_4C4F_4721; // "eNVyLOG!"
const LOG_HEADER: u64 = 32;
const RECORD_HEADER: u64 = 8;

/// A persistent append-only log over `[region, region + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log {
    region: u64,
    region_len: u64,
}

/// One validated record returned by iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Sequence number (0-based position in the log).
    pub index: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Log {
    /// Create a fresh, empty log.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfSpace`] if the region cannot hold the header;
    /// memory errors.
    pub fn create<M: Memory>(mem: &mut M, region: u64, len: u64) -> Result<Log, HeapError> {
        if len < LOG_HEADER + RECORD_HEADER + 8 {
            return Err(HeapError::OutOfSpace);
        }
        let log = Log {
            region,
            region_len: len,
        };
        log.write_header(mem, LOG_HEADER, 0)?;
        Ok(log)
    }

    /// Re-open an existing log.
    ///
    /// # Errors
    ///
    /// [`HeapError::BadMagic`]; memory errors.
    pub fn open<M: Memory>(mem: &mut M, region: u64) -> Result<Log, HeapError> {
        let mut header = [0u8; LOG_HEADER as usize];
        mem.read(region, &mut header)?;
        let word = |i: usize| u64::from_le_bytes(header[i * 8..i * 8 + 8].try_into().expect("8"));
        if word(0) != MAGIC {
            return Err(HeapError::BadMagic);
        }
        Ok(Log {
            region,
            region_len: word(1),
        })
    }

    fn write_header<M: Memory>(&self, mem: &mut M, tail: u64, count: u64) -> Result<(), HeapError> {
        let mut header = [0u8; LOG_HEADER as usize];
        header[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        header[8..16].copy_from_slice(&self.region_len.to_le_bytes());
        header[16..24].copy_from_slice(&tail.to_le_bytes());
        header[24..32].copy_from_slice(&count.to_le_bytes());
        mem.write(self.region, &header)?;
        Ok(())
    }

    fn read_header<M: Memory>(&self, mem: &mut M) -> Result<(u64, u64), HeapError> {
        let mut header = [0u8; LOG_HEADER as usize];
        mem.read(self.region, &mut header)?;
        let word = |i: usize| u64::from_le_bytes(header[i * 8..i * 8 + 8].try_into().expect("8"));
        Ok((word(2), word(3)))
    }

    /// Number of committed records.
    ///
    /// # Errors
    ///
    /// Memory errors.
    pub fn len<M: Memory>(&self, mem: &mut M) -> Result<u64, HeapError> {
        Ok(self.read_header(mem)?.1)
    }

    /// Whether the log holds no records.
    ///
    /// # Errors
    ///
    /// Memory errors.
    pub fn is_empty<M: Memory>(&self, mem: &mut M) -> Result<bool, HeapError> {
        Ok(self.len(mem)? == 0)
    }

    /// Bytes of the region in use.
    ///
    /// # Errors
    ///
    /// Memory errors.
    pub fn bytes_used<M: Memory>(&self, mem: &mut M) -> Result<u64, HeapError> {
        Ok(self.read_header(mem)?.0)
    }

    /// Append a record; it is committed once this returns.
    ///
    /// # Errors
    ///
    /// [`HeapError::RecordTooLarge`] if the payload cannot fit the
    /// region even when empty, [`HeapError::OutOfSpace`] when the
    /// remaining space is insufficient; memory errors.
    pub fn append<M: Memory>(&self, mem: &mut M, payload: &[u8]) -> Result<u64, HeapError> {
        let padded = (payload.len() as u64).div_ceil(8) * 8;
        let need = RECORD_HEADER + padded;
        if LOG_HEADER + need > self.region_len {
            return Err(HeapError::RecordTooLarge { len: payload.len() });
        }
        let (tail, count) = self.read_header(mem)?;
        if tail + need > self.region_len {
            return Err(HeapError::OutOfSpace);
        }
        let at = self.region + tail;
        let mut rec_header = [0u8; RECORD_HEADER as usize];
        rec_header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        rec_header[4..8].copy_from_slice(&crc32(payload).to_le_bytes());
        mem.write(at, &rec_header)?;
        if !payload.is_empty() {
            mem.write(at + RECORD_HEADER, payload)?;
        }
        // Commit point: the tail pointer advances only after the record
        // is fully in place.
        self.write_header(mem, tail + need, count + 1)?;
        Ok(count)
    }

    /// Iterate the committed records, validating each CRC; iteration
    /// ends early at the first corrupt record (salvage semantics).
    pub fn iter<'m, M: Memory>(&self, mem: &'m mut M) -> LogIter<'m, M> {
        LogIter {
            log: *self,
            mem,
            offset: LOG_HEADER,
            index: 0,
        }
    }

    /// Read and validate every record (convenience over [`Log::iter`]).
    ///
    /// # Errors
    ///
    /// Memory errors.
    pub fn records<M: Memory>(&self, mem: &mut M) -> Result<Vec<LogRecord>, HeapError> {
        Ok(self.iter(mem).collect())
    }

    /// Discard all records.
    ///
    /// # Errors
    ///
    /// Memory errors.
    pub fn reset<M: Memory>(&self, mem: &mut M) -> Result<(), HeapError> {
        self.write_header(mem, LOG_HEADER, 0)
    }
}

/// Iterator over validated log records. See [`Log::iter`].
#[derive(Debug)]
pub struct LogIter<'m, M> {
    log: Log,
    mem: &'m mut M,
    offset: u64,
    index: u64,
}

impl<M: Memory> Iterator for LogIter<'_, M> {
    type Item = LogRecord;

    fn next(&mut self) -> Option<LogRecord> {
        let (tail, count) = self.log.read_header(self.mem).ok()?;
        if self.index >= count || self.offset >= tail {
            return None;
        }
        let at = self.log.region + self.offset;
        let mut rec_header = [0u8; RECORD_HEADER as usize];
        self.mem.read(at, &mut rec_header).ok()?;
        let len = u32::from_le_bytes(rec_header[0..4].try_into().expect("4")) as u64;
        let stored_crc = u32::from_le_bytes(rec_header[4..8].try_into().expect("4"));
        let padded = len.div_ceil(8) * 8;
        if self.offset + RECORD_HEADER + padded > tail {
            return None; // truncated tail record
        }
        let mut payload = vec![0u8; len as usize];
        self.mem.read(at + RECORD_HEADER, &mut payload).ok()?;
        if crc32(&payload) != stored_crc {
            return None; // corruption: salvage stops here
        }
        let record = LogRecord {
            index: self.index,
            payload,
        };
        self.index += 1;
        self.offset += RECORD_HEADER + padded;
        Some(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use envy_core::VecMemory;

    fn setup() -> (VecMemory, Log) {
        let mut mem = VecMemory::new(64 * 1024);
        let log = Log::create(&mut mem, 0, 64 * 1024).unwrap();
        (mem, log)
    }

    #[test]
    fn append_and_replay() {
        let (mut mem, log) = setup();
        assert!(log.is_empty(&mut mem).unwrap());
        log.append(&mut mem, b"first").unwrap();
        log.append(&mut mem, b"second record").unwrap();
        log.append(&mut mem, b"").unwrap(); // empty records are legal
        let records = log.records(&mut mem).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].payload, b"first");
        assert_eq!(records[1].payload, b"second record");
        assert_eq!(records[2].payload, b"");
        assert_eq!(records[2].index, 2);
    }

    #[test]
    fn append_returns_sequence_numbers() {
        let (mut mem, log) = setup();
        assert_eq!(log.append(&mut mem, b"a").unwrap(), 0);
        assert_eq!(log.append(&mut mem, b"b").unwrap(), 1);
        assert_eq!(log.len(&mut mem).unwrap(), 2);
    }

    #[test]
    fn open_reattaches() {
        let (mut mem, log) = setup();
        log.append(&mut mem, b"durable").unwrap();
        let reopened = Log::open(&mut mem, 0).unwrap();
        assert_eq!(reopened, log);
        assert_eq!(reopened.records(&mut mem).unwrap()[0].payload, b"durable");
    }

    #[test]
    fn corruption_stops_replay_at_the_damage() {
        let (mut mem, log) = setup();
        log.append(&mut mem, b"good one").unwrap();
        let off = log.bytes_used(&mut mem).unwrap();
        log.append(&mut mem, b"to be damaged").unwrap();
        log.append(&mut mem, b"after the damage").unwrap();
        // Flip a payload byte of the second record.
        mem.write(off + RECORD_HEADER, &[0xFF]).unwrap();
        let records = log.records(&mut mem).unwrap();
        assert_eq!(records.len(), 1, "salvage stops at the corrupt record");
        assert_eq!(records[0].payload, b"good one");
    }

    #[test]
    fn torn_append_is_invisible() {
        // Simulate a crash between writing the record and committing the
        // header: write record bytes manually without advancing the tail.
        let (mut mem, log) = setup();
        log.append(&mut mem, b"committed").unwrap();
        let tail = log.bytes_used(&mut mem).unwrap();
        let mut torn = [0u8; 8];
        torn[0..4].copy_from_slice(&5u32.to_le_bytes());
        mem.write(tail, &torn).unwrap(); // header of a never-committed record
        let records = log.records(&mut mem).unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn fills_to_out_of_space() {
        let mut mem = VecMemory::new(1024);
        let log = Log::create(&mut mem, 0, 512).unwrap();
        let mut appended = 0;
        loop {
            match log.append(&mut mem, &[7u8; 48]) {
                Ok(_) => appended += 1,
                Err(HeapError::OutOfSpace) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(appended > 0);
        assert_eq!(log.records(&mut mem).unwrap().len(), appended);
    }

    #[test]
    fn oversized_record_rejected_upfront() {
        let mut mem = VecMemory::new(4096);
        let log = Log::create(&mut mem, 0, 256).unwrap();
        assert!(matches!(
            log.append(&mut mem, &[0u8; 512]),
            Err(HeapError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn reset_clears() {
        let (mut mem, log) = setup();
        log.append(&mut mem, b"gone soon").unwrap();
        log.reset(&mut mem).unwrap();
        assert!(log.is_empty(&mut mem).unwrap());
        assert_eq!(log.records(&mut mem).unwrap().len(), 0);
        // And appends work again.
        log.append(&mut mem, b"fresh").unwrap();
        assert_eq!(log.records(&mut mem).unwrap()[0].payload, b"fresh");
    }

    #[test]
    fn open_rejects_garbage() {
        let mut mem = VecMemory::new(256);
        assert_eq!(Log::open(&mut mem, 0).unwrap_err(), HeapError::BadMagic);
    }

    #[test]
    fn many_records_roundtrip() {
        let (mut mem, log) = setup();
        for i in 0..500u32 {
            log.append(&mut mem, &i.to_le_bytes()).unwrap();
        }
        let records = log.records(&mut mem).unwrap();
        assert_eq!(records.len(), 500);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(
                u32::from_le_bytes(r.payload[..].try_into().unwrap()),
                i as u32
            );
        }
    }
}
