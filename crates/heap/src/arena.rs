//! A persistent free-list allocator.
//!
//! All metadata — region header, block headers, the free list — lives in
//! the underlying memory, so an arena re-opened after a restart or power
//! failure is fully usable. Layout:
//!
//! ```text
//! region header (48 B): magic, region_len, free_head, high_water,
//!                       allocated_blocks, allocated_bytes
//! block: header (16 B: size, tag) + payload (free blocks keep their
//!        next-free pointer in the first 8 payload bytes)
//! ```
//!
//! Allocation is first-fit with block splitting; `free` coalesces with
//! the physically following block when that is also free.

use crate::HeapError;
use envy_core::Memory;

const MAGIC: u64 = 0x654E_5679_4845_4150; // "eNVyHEAP"
const REGION_HEADER: u64 = 48;
const BLOCK_HEADER: u64 = 16;
const MIN_PAYLOAD: u64 = 16;
const TAG_USED: u64 = 0x55_53_45_44; // "USED"
const TAG_FREE: u64 = 0x46_52_45_45; // "FREE"

/// Usage statistics for an [`Arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Currently allocated blocks.
    pub allocated_blocks: u64,
    /// Currently allocated payload bytes (as requested, rounded to 8).
    pub allocated_bytes: u64,
    /// Blocks on the free list.
    pub free_blocks: u64,
    /// Bytes between the region start and the high-water mark.
    pub used_region: u64,
}

/// A persistent allocator over `[region, region + len)` of a
/// [`Memory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arena {
    region: u64,
    region_len: u64,
}

impl Arena {
    /// Create a fresh arena (overwrites the region header).
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfSpace`] if the region cannot hold the header
    /// plus one minimal block; memory errors.
    pub fn create<M: Memory>(mem: &mut M, region: u64, len: u64) -> Result<Arena, HeapError> {
        if len < REGION_HEADER + BLOCK_HEADER + MIN_PAYLOAD {
            return Err(HeapError::OutOfSpace);
        }
        let arena = Arena {
            region,
            region_len: len,
        };
        arena.write_header(mem, 0, region + REGION_HEADER, 0, 0)?;
        Ok(arena)
    }

    /// Re-open an existing arena.
    ///
    /// # Errors
    ///
    /// [`HeapError::BadMagic`] if the region holds no arena; memory
    /// errors.
    pub fn open<M: Memory>(mem: &mut M, region: u64) -> Result<Arena, HeapError> {
        let mut header = [0u8; REGION_HEADER as usize];
        mem.read(region, &mut header)?;
        let word = |i: usize| u64::from_le_bytes(header[i * 8..i * 8 + 8].try_into().expect("8"));
        if word(0) != MAGIC {
            return Err(HeapError::BadMagic);
        }
        Ok(Arena {
            region,
            region_len: word(1),
        })
    }

    fn write_header<M: Memory>(
        &self,
        mem: &mut M,
        free_head: u64,
        high_water: u64,
        blocks: u64,
        bytes: u64,
    ) -> Result<(), HeapError> {
        let mut header = [0u8; REGION_HEADER as usize];
        header[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        header[8..16].copy_from_slice(&self.region_len.to_le_bytes());
        header[16..24].copy_from_slice(&free_head.to_le_bytes());
        header[24..32].copy_from_slice(&high_water.to_le_bytes());
        header[32..40].copy_from_slice(&blocks.to_le_bytes());
        header[40..48].copy_from_slice(&bytes.to_le_bytes());
        mem.write(self.region, &header)?;
        Ok(())
    }

    fn read_header<M: Memory>(&self, mem: &mut M) -> Result<(u64, u64, u64, u64), HeapError> {
        let mut header = [0u8; REGION_HEADER as usize];
        mem.read(self.region, &mut header)?;
        let word = |i: usize| u64::from_le_bytes(header[i * 8..i * 8 + 8].try_into().expect("8"));
        Ok((word(2), word(3), word(4), word(5)))
    }

    fn read_u64<M: Memory>(mem: &mut M, addr: u64) -> Result<u64, HeapError> {
        let mut b = [0u8; 8];
        mem.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn write_u64<M: Memory>(mem: &mut M, addr: u64, v: u64) -> Result<(), HeapError> {
        mem.write(addr, &v.to_le_bytes())?;
        Ok(())
    }

    fn block_size<M: Memory>(mem: &mut M, block: u64) -> Result<u64, HeapError> {
        Self::read_u64(mem, block)
    }

    fn block_tag<M: Memory>(mem: &mut M, block: u64) -> Result<u64, HeapError> {
        Self::read_u64(mem, block + 8)
    }

    fn set_block<M: Memory>(mem: &mut M, block: u64, size: u64, tag: u64) -> Result<(), HeapError> {
        Self::write_u64(mem, block, size)?;
        Self::write_u64(mem, block + 8, tag)
    }

    /// Allocate `size` bytes; returns the payload address.
    ///
    /// # Errors
    ///
    /// [`HeapError::BadSize`] for a zero size,
    /// [`HeapError::OutOfSpace`] when neither the free list nor the
    /// region tail can satisfy the request; memory errors.
    pub fn alloc<M: Memory>(&mut self, mem: &mut M, size: u64) -> Result<u64, HeapError> {
        if size == 0 {
            return Err(HeapError::BadSize { size });
        }
        let payload = size.div_ceil(8) * 8;
        let need = BLOCK_HEADER + payload.max(MIN_PAYLOAD);
        let (mut free_head, mut high_water, blocks, bytes) = self.read_header(mem)?;

        // First fit on the free list.
        let mut prev: Option<u64> = None;
        let mut cursor = free_head;
        while cursor != 0 {
            let bsize = Self::block_size(mem, cursor)?;
            let next = Self::read_u64(mem, cursor + BLOCK_HEADER)?;
            if bsize >= need {
                // Unlink.
                match prev {
                    None => free_head = next,
                    Some(p) => Self::write_u64(mem, p + BLOCK_HEADER, next)?,
                }
                // Split when the remainder can hold a block of its own.
                if bsize - need >= BLOCK_HEADER + MIN_PAYLOAD {
                    let rest = cursor + need;
                    Self::set_block(mem, rest, bsize - need, TAG_FREE)?;
                    Self::write_u64(mem, rest + BLOCK_HEADER, free_head)?;
                    free_head = rest;
                    Self::set_block(mem, cursor, need, TAG_USED)?;
                } else {
                    Self::set_block(mem, cursor, bsize, TAG_USED)?;
                }
                self.write_header(mem, free_head, high_water, blocks + 1, bytes + payload)?;
                return Ok(cursor + BLOCK_HEADER);
            }
            prev = Some(cursor);
            cursor = next;
        }

        // Bump allocation from the high-water mark.
        if high_water + need > self.region + self.region_len {
            return Err(HeapError::OutOfSpace);
        }
        let block = high_water;
        Self::set_block(mem, block, need, TAG_USED)?;
        high_water += need;
        self.write_header(mem, free_head, high_water, blocks + 1, bytes + payload)?;
        Ok(block + BLOCK_HEADER)
    }

    /// Free a previously allocated payload address.
    ///
    /// # Errors
    ///
    /// [`HeapError::NotABlock`] if `addr` is not the payload address of
    /// a live allocation; memory errors.
    pub fn free<M: Memory>(&mut self, mem: &mut M, addr: u64) -> Result<(), HeapError> {
        if addr < self.region + REGION_HEADER + BLOCK_HEADER {
            return Err(HeapError::NotABlock { addr });
        }
        let block = addr - BLOCK_HEADER;
        let (mut free_head, high_water, blocks, bytes) = self.read_header(mem)?;
        if block >= high_water || Self::block_tag(mem, block)? != TAG_USED {
            return Err(HeapError::NotABlock { addr });
        }
        let mut size = Self::block_size(mem, block)?;
        let payload = size - BLOCK_HEADER;

        // Coalesce with the physically following block if it is free.
        let next_block = block + size;
        if next_block < high_water && Self::block_tag(mem, next_block)? == TAG_FREE {
            let next_size = Self::block_size(mem, next_block)?;
            // Unlink the neighbour from the free list.
            let mut prev: Option<u64> = None;
            let mut cursor = free_head;
            while cursor != 0 {
                let next = Self::read_u64(mem, cursor + BLOCK_HEADER)?;
                if cursor == next_block {
                    match prev {
                        None => free_head = next,
                        Some(p) => Self::write_u64(mem, p + BLOCK_HEADER, next)?,
                    }
                    break;
                }
                prev = Some(cursor);
                cursor = next;
            }
            size += next_size;
        }

        Self::set_block(mem, block, size, TAG_FREE)?;
        Self::write_u64(mem, block + BLOCK_HEADER, free_head)?;
        self.write_header(
            mem,
            block,
            high_water,
            blocks - 1,
            bytes.saturating_sub(payload),
        )?;
        Ok(())
    }

    /// Usage statistics.
    ///
    /// # Errors
    ///
    /// Memory errors.
    pub fn stats<M: Memory>(&self, mem: &mut M) -> Result<ArenaStats, HeapError> {
        let (free_head, high_water, blocks, bytes) = self.read_header(mem)?;
        let mut free_blocks = 0;
        let mut cursor = free_head;
        while cursor != 0 {
            free_blocks += 1;
            cursor = Self::read_u64(mem, cursor + BLOCK_HEADER)?;
        }
        Ok(ArenaStats {
            allocated_blocks: blocks,
            allocated_bytes: bytes,
            free_blocks,
            used_region: high_water - self.region,
        })
    }

    /// Verify structural consistency: every block between the header and
    /// the high-water mark is tagged and sized sanely, and the free list
    /// references only free blocks. Test/recovery support.
    ///
    /// # Errors
    ///
    /// A description of the first inconsistency.
    pub fn check<M: Memory>(&self, mem: &mut M) -> Result<(), String> {
        let (free_head, high_water, ..) = self.read_header(mem).map_err(|e| e.to_string())?;
        let mut block = self.region + REGION_HEADER;
        let mut free_seen = 0u64;
        while block < high_water {
            let size = Self::block_size(mem, block).map_err(|e| e.to_string())?;
            let tag = Self::block_tag(mem, block).map_err(|e| e.to_string())?;
            if size < BLOCK_HEADER + MIN_PAYLOAD || block + size > high_water {
                return Err(format!("block {block:#x} has bad size {size}"));
            }
            match tag {
                TAG_USED => {}
                TAG_FREE => free_seen += 1,
                other => return Err(format!("block {block:#x} has bad tag {other:#x}")),
            }
            block += size;
        }
        if block != high_water {
            return Err("blocks do not tile the used region".into());
        }
        let mut cursor = free_head;
        let mut on_list = 0u64;
        while cursor != 0 {
            let tag = Self::block_tag(mem, cursor).map_err(|e| e.to_string())?;
            if tag != TAG_FREE {
                return Err(format!("free list points at non-free block {cursor:#x}"));
            }
            on_list += 1;
            if on_list > free_seen {
                return Err("free list longer than free blocks (cycle?)".into());
            }
            cursor = Self::read_u64(mem, cursor + BLOCK_HEADER).map_err(|e| e.to_string())?;
        }
        if on_list != free_seen {
            return Err(format!("{free_seen} free blocks but {on_list} on the list"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use envy_core::VecMemory;

    fn setup() -> (VecMemory, Arena) {
        let mut mem = VecMemory::new(64 * 1024);
        let arena = Arena::create(&mut mem, 0, 64 * 1024).unwrap();
        (mem, arena)
    }

    #[test]
    fn alloc_returns_writable_disjoint_blocks() {
        let (mut mem, mut a) = setup();
        let x = a.alloc(&mut mem, 100).unwrap();
        let y = a.alloc(&mut mem, 100).unwrap();
        assert!(y >= x + 100 || x >= y + 100, "blocks overlap");
        mem.write(x, &[1u8; 100]).unwrap();
        mem.write(y, &[2u8; 100]).unwrap();
        let mut b = [0u8; 100];
        mem.read(x, &mut b).unwrap();
        assert_eq!(b, [1u8; 100]);
        a.check(&mut mem).unwrap();
    }

    #[test]
    fn free_then_alloc_reuses_space() {
        let (mut mem, mut a) = setup();
        let x = a.alloc(&mut mem, 256).unwrap();
        a.free(&mut mem, x).unwrap();
        let y = a.alloc(&mut mem, 256).unwrap();
        assert_eq!(x, y, "first fit should reuse the freed block");
        a.check(&mut mem).unwrap();
    }

    #[test]
    fn split_leaves_usable_remainder() {
        let (mut mem, mut a) = setup();
        let big = a.alloc(&mut mem, 1024).unwrap();
        a.free(&mut mem, big).unwrap();
        let small = a.alloc(&mut mem, 64).unwrap();
        assert_eq!(small, big, "first fit");
        // The remainder should satisfy another allocation without
        // growing the region.
        let before = a.stats(&mut mem).unwrap().used_region;
        let _second = a.alloc(&mut mem, 64).unwrap();
        let after = a.stats(&mut mem).unwrap().used_region;
        assert_eq!(before, after, "second alloc should come from the split");
        a.check(&mut mem).unwrap();
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let (mut mem, mut a) = setup();
        let x = a.alloc(&mut mem, 100).unwrap();
        let y = a.alloc(&mut mem, 100).unwrap();
        let _guard = a.alloc(&mut mem, 8).unwrap();
        // Free in address order: y joins the free list, then freeing x
        // absorbs y.
        a.free(&mut mem, y).unwrap();
        a.free(&mut mem, x).unwrap();
        let stats = a.stats(&mut mem).unwrap();
        assert_eq!(stats.free_blocks, 1, "x and y should have coalesced");
        // And a larger allocation fits in the merged block.
        let z = a.alloc(&mut mem, 200).unwrap();
        assert_eq!(z, x);
        a.check(&mut mem).unwrap();
    }

    #[test]
    fn double_free_rejected() {
        let (mut mem, mut a) = setup();
        let x = a.alloc(&mut mem, 64).unwrap();
        a.free(&mut mem, x).unwrap();
        assert!(matches!(
            a.free(&mut mem, x),
            Err(HeapError::NotABlock { .. })
        ));
    }

    #[test]
    fn bogus_frees_rejected() {
        let (mut mem, mut a) = setup();
        let x = a.alloc(&mut mem, 64).unwrap();
        assert!(a.free(&mut mem, x + 8).is_err());
        assert!(a.free(&mut mem, 0).is_err());
        assert!(a.free(&mut mem, 1 << 40).is_err());
    }

    #[test]
    fn zero_alloc_rejected() {
        let (mut mem, mut a) = setup();
        assert!(matches!(
            a.alloc(&mut mem, 0),
            Err(HeapError::BadSize { .. })
        ));
    }

    #[test]
    fn out_of_space_is_clean() {
        let mut mem = VecMemory::new(1024);
        let mut a = Arena::create(&mut mem, 0, 1024).unwrap();
        let mut live = Vec::new();
        loop {
            match a.alloc(&mut mem, 64) {
                Ok(addr) => live.push(addr),
                Err(HeapError::OutOfSpace) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(!live.is_empty());
        // Free everything; a big allocation still fails (no cross-block
        // compaction), but small ones succeed again.
        for addr in live {
            a.free(&mut mem, addr).unwrap();
        }
        assert!(a.alloc(&mut mem, 64).is_ok());
        a.check(&mut mem).unwrap();
    }

    #[test]
    fn open_reattaches() {
        let (mut mem, mut a) = setup();
        let x = a.alloc(&mut mem, 128).unwrap();
        mem.write(x, b"survives").unwrap();
        let mut reopened = Arena::open(&mut mem, 0).unwrap();
        assert_eq!(reopened, a);
        let mut b = [0u8; 8];
        mem.read(x, &mut b).unwrap();
        assert_eq!(&b, b"survives");
        // The reopened handle can free the old allocation.
        reopened.free(&mut mem, x).unwrap();
    }

    #[test]
    fn open_rejects_garbage() {
        let mut mem = VecMemory::new(1024);
        assert_eq!(Arena::open(&mut mem, 0).unwrap_err(), HeapError::BadMagic);
    }

    #[test]
    fn stats_track_usage() {
        let (mut mem, mut a) = setup();
        let x = a.alloc(&mut mem, 100).unwrap();
        let _y = a.alloc(&mut mem, 50).unwrap();
        let s = a.stats(&mut mem).unwrap();
        assert_eq!(s.allocated_blocks, 2);
        assert_eq!(s.allocated_bytes, 104 + 56); // rounded to 8
        a.free(&mut mem, x).unwrap();
        let s = a.stats(&mut mem).unwrap();
        assert_eq!(s.allocated_blocks, 1);
        assert_eq!(s.free_blocks, 1);
    }

    #[test]
    fn alloc_free_fuzz_against_model() {
        use envy_sim::rng::Rng;
        let mut mem = VecMemory::new(256 * 1024);
        let mut a = Arena::create(&mut mem, 4096, 200 * 1024).unwrap();
        let mut live: Vec<(u64, u64)> = Vec::new(); // (addr, size)
        let mut rng = Rng::seed_from(31);
        for round in 0..5_000 {
            if live.is_empty() || rng.chance(0.6) {
                let size = rng.range(1, 512);
                match a.alloc(&mut mem, size) {
                    Ok(addr) => {
                        // No overlap with any live block.
                        for &(other, osize) in &live {
                            assert!(
                                addr + size <= other || other + osize <= addr,
                                "overlap at round {round}"
                            );
                        }
                        live.push((addr, size));
                    }
                    Err(HeapError::OutOfSpace) => {
                        // Free half the blocks and continue.
                        for _ in 0..live.len() / 2 {
                            let i = rng.below(live.len() as u64) as usize;
                            let (addr, _) = live.swap_remove(i);
                            a.free(&mut mem, addr).unwrap();
                        }
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            } else {
                let i = rng.below(live.len() as u64) as usize;
                let (addr, _) = live.swap_remove(i);
                a.free(&mut mem, addr).unwrap();
            }
            if round % 512 == 0 {
                a.check(&mut mem).unwrap();
            }
        }
        a.check(&mut mem).unwrap();
        let s = a.stats(&mut mem).unwrap();
        assert_eq!(s.allocated_blocks, live.len() as u64);
    }
}
