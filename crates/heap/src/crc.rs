//! CRC-32 (IEEE 802.3 polynomial), used for log-record integrity.

/// Compute the CRC-32 (IEEE) of `data`.
///
/// ```
/// // Standard check value for "123456789".
/// assert_eq!(envy_heap::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
