//! `envy-cli` — command-line driver for the eNVy simulator.
//!
//! ```text
//! envy-cli info                          print the paper's configuration
//! envy-cli cleaning [options]            run a cleaning-cost study
//! envy-cli tpca [options]                run a timed TPC-A experiment
//! envy-cli stats [options]               timed run + percentiles, breakdown, wear
//! envy-cli trace [options]               timed run + controller trace tail
//! envy-cli trace-gen [options]           generate a TPC-A access trace
//! envy-cli trace-replay --file <path>    replay a trace on an eNVy store
//! envy-cli serve [options]               serve the sharded store over a socket
//! envy-cli bench-serve [options]         closed-loop load against sharded shards
//! envy-cli kv-get|kv-put|kv-del|kv-scan  key-value ops against a live server
//! ```
//!
//! Run `envy-cli <command> --help` for per-command options.

use envy::core::{EnvyConfig, EnvyStore, PolicyKind};
use envy::server::{
    loadgen, serve_with, Client, Listener, LoadSpec, NetConfig, NetDriver, ServeConfig, ShardPlan,
    ShardedStore,
};
use envy::sim::report::{fmt_f64, Table};
use envy::sim::time::Ns;
use envy::workload::{run_timed, AnalyticTpca, CleaningStudy, TpcaScale, Trace};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "info" => cmd_info(),
        "cleaning" => cmd_cleaning(&args[1..]),
        "tpca" => cmd_tpca(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "trace-gen" => cmd_trace_gen(&args[1..]),
        "trace-replay" => cmd_trace_replay(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "bench-serve" => cmd_bench_serve(&args[1..]),
        "kv-get" => cmd_kv(&args[1..], KvCmd::Get),
        "kv-put" => cmd_kv(&args[1..], KvCmd::Put),
        "kv-del" => cmd_kv(&args[1..], KvCmd::Del),
        "kv-scan" => cmd_kv(&args[1..], KvCmd::Scan),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("envy-cli: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: envy-cli <command> [options]

commands:
  info                      the paper's 2 GB configuration and cost model
  cleaning                  steady-state cleaning-cost study (Figure 8 style)
      --policy <greedy|cost-benefit|fifo|lg|hybrid:<k>>   (default hybrid:16)
      --locality <d/a>      bimodal locality, e.g. 10/90    (default 50/50)
      --segments <n>        segment count                   (default 64)
      --pages <n>           pages per segment               (default 256)
      --util <f>            array utilization               (default 0.8)
  tpca                      timed TPC-A run on a scaled eNVy system
      --rate <tps>          offered transaction rate        (default 10000)
      --txns <n>            measured transactions           (default 20000)
      --util <f>            array utilization               (default 0.8)
  stats                     timed TPC-A run, then the full observability report:
                            latency percentiles, busy breakdown, per-segment wear
      --rate <tps>          offered transaction rate        (default 10000)
      --txns <n>            measured transactions           (default 20000)
      --util <f>            array utilization               (default 0.8)
  trace                     timed TPC-A run, then the controller trace tail
      --rate <tps>          offered transaction rate        (default 10000)
      --txns <n>            measured transactions           (default 20000)
      --util <f>            array utilization               (default 0.8)
      --last <n>            trace records to print          (default 40)
  trace-gen                 emit a timed TPC-A access trace (text) to stdout
      --rate <tps>          arrival rate                    (default 1000)
      --txns <n>            transactions                    (default 100)
      --seed <n>            RNG seed                        (default 42)
  trace-replay              replay a trace file on a fresh eNVy store
      --file <path>         trace file (required)
      --untimed             ignore timestamps (state-only replay)
  serve                     serve the sharded front end over a socket
                            (runs until a wire SHUTDOWN frame, see docs/SERVING.md)
      --tcp <addr>          TCP listen address              (default 127.0.0.1:7033)
      --unix <path>         Unix socket path (takes precedence over --tcp)
      --shards <n>          shard count                     (default 4)
      --txn-slots <n>       concurrent transactions per shard (default 1)
      --scale <small|scaled>  per-shard array size          (default scaled)
      --duration-secs <n>   serve n seconds, then drain     (default: until shutdown)
      --net-driver <d>      connection driver: epoll|poll|threads (default epoll)
      --idle-timeout-ms <n> reap connections silent > n ms  (default: never)
  bench-serve               closed-loop load against an in-process sharded store,
                            or a live server (--unix/--connect; --shards/--scale
                            must then match the server's)
      --shards <n>          shard count                     (default 4)
      --txn-slots <n>       concurrent transactions per shard (default 1)
      --clients <n>         client threads / connections    (default 4)
      --txns <n>            transactions per client         (default 2000)
      --scale <small|scaled>  per-shard array size          (default scaled)
      --seed <n>            RNG seed                        (default 24301)
      --atomic <f>          run every transaction atomically (TXN_BEGIN ..
                            TXN_COMMIT), aborting a seeded fraction f (0..=1)
      --unix <path>         drive a live server on a Unix socket
      --connect <addr>      drive a live server over TCP
      --shutdown            send a wire SHUTDOWN after the load (socket modes)
  kv-get | kv-put | kv-del | kv-scan
                            one key-value operation against a live server
                            (see docs/KV.md); shared options:
      --connect <addr>      server TCP address              (default 127.0.0.1:7033)
      --unix <path>         server Unix socket path (takes precedence)
      --shard <n>           target shard                    (default 0)
      --key <n>             the key (get/put/del)
      --value <text>        the value (put; utf-8 text)
      --txn <n>             run under an open transaction id (put/del)
      --start <n>           first key of the range (scan)   (default 0)
      --limit <n>           max records returned (scan)     (default 10)";

/// Find `--name <value>` in `args`.
fn opt<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn opt_parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match opt(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value `{v}` for {name}")),
    }
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn cmd_info() -> Result<(), String> {
    let c = EnvyConfig::paper_2gb();
    let g = &c.geometry;
    let mut t = Table::new(&["parameter", "value"]);
    t.row(&[
        "flash array".into(),
        format!("{} MB", g.total_bytes() >> 20),
    ]);
    t.row(&["banks".into(), g.banks().to_string()]);
    t.row(&[
        "segments".into(),
        format!("{} x {} MB", g.segments(), g.segment_bytes() >> 20),
    ]);
    t.row(&["page size".into(), format!("{} B", g.page_bytes())]);
    t.row(&["write buffer".into(), format!("{} pages", c.buffer_pages)]);
    t.row(&[
        "page-table SRAM".into(),
        format!("{} MB", c.page_table_sram_bytes() >> 20),
    ]);
    t.row(&["program time".into(), c.timings.program.to_string()]);
    t.row(&["erase time".into(), c.timings.erase.to_string()]);
    t.row(&["policy".into(), format!("{:?}", c.policy)]);
    print!("{}", t.render());
    Ok(())
}

fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    match s {
        "greedy" => Ok(PolicyKind::Greedy),
        "cost-benefit" => Ok(PolicyKind::CostBenefit),
        "fifo" => Ok(PolicyKind::Fifo),
        "lg" | "locality-gathering" => Ok(PolicyKind::LocalityGathering),
        other => match other.strip_prefix("hybrid:") {
            Some(k) => {
                let k: u32 = k
                    .parse()
                    .map_err(|_| format!("bad partition size in `{other}`"))?;
                Ok(PolicyKind::Hybrid {
                    segments_per_partition: k,
                })
            }
            None => Err(format!("unknown policy `{other}`")),
        },
    }
}

fn parse_locality(s: &str) -> Result<(u32, u32), String> {
    let (d, a) = s
        .split_once('/')
        .ok_or_else(|| format!("locality `{s}` must be d/a, e.g. 10/90"))?;
    let d = d.parse().map_err(|_| format!("bad locality `{s}`"))?;
    let a = a.parse().map_err(|_| format!("bad locality `{s}`"))?;
    Ok((d, a))
}

fn cmd_cleaning(args: &[String]) -> Result<(), String> {
    let policy = parse_policy(opt(args, "--policy").unwrap_or("hybrid:16"))?;
    let locality = parse_locality(opt(args, "--locality").unwrap_or("50/50"))?;
    let segments: u32 = opt_parse(args, "--segments", 64)?;
    let pages: u32 = opt_parse(args, "--pages", 256)?;
    let util: f64 = opt_parse(args, "--util", 0.8)?;
    let mut study = CleaningStudy::sized(segments, pages, policy, locality);
    study.utilization = util;
    let out = study.run().map_err(|e| e.to_string())?;
    let mut t = Table::new(&["metric", "value"]);
    t.row(&["cleaning cost".into(), fmt_f64(out.cleaning_cost)]);
    t.row(&["pages flushed".into(), out.pages_flushed.to_string()]);
    t.row(&["cleaner programs".into(), out.clean_programs.to_string()]);
    t.row(&["segments cleaned".into(), out.cleans.to_string()]);
    t.row(&["wear spread".into(), out.wear_spread.to_string()]);
    print!("{}", t.render());
    Ok(())
}

fn scaled_tpca(util: f64) -> Result<(EnvyStore, AnalyticTpca), String> {
    let mut config = EnvyConfig::scaled(8, 128, 2048, 256).with_store_data(false);
    config.word_bytes = 8;
    config.timings.erase = Ns::from_nanos(50_000_000 * 2048 / 65_536);
    let config = config.with_utilization(util);
    let scale = TpcaScale::fit_bytes(config.logical_bytes());
    let mut store = EnvyStore::new(config).map_err(|e| e.to_string())?;
    store.prefill().map_err(|e| e.to_string())?;
    let driver = AnalyticTpca::new(scale);
    // Churn to steady state.
    let free = store.config().geometry.total_pages() - store.config().logical_pages;
    let mut rng = envy::sim::rng::Rng::seed_from(0xC0FFEE);
    for _ in 0..free * 2 {
        let id = rng.below(scale.accounts());
        store
            .write(driver.layout().account_addr(id), &[0u8; 8])
            .map_err(|e| e.to_string())?;
    }
    Ok((store, driver))
}

fn cmd_tpca(args: &[String]) -> Result<(), String> {
    let rate: f64 = opt_parse(args, "--rate", 10_000.0)?;
    let txns: u64 = opt_parse(args, "--txns", 20_000)?;
    let util: f64 = opt_parse(args, "--util", 0.8)?;
    let (mut store, driver) = scaled_tpca(util)?;
    let r = run_timed(&mut store, &driver, rate, txns / 10, txns, 42).map_err(|e| e.to_string())?;
    let mut t = Table::new(&["metric", "value"]);
    t.row(&["offered TPS".into(), fmt_f64(r.offered_tps)]);
    t.row(&["achieved TPS".into(), fmt_f64(r.achieved_tps)]);
    t.row(&["read latency".into(), r.read_latency.to_string()]);
    t.row(&["write latency".into(), r.write_latency.to_string()]);
    t.row(&["flushes/s".into(), fmt_f64(r.flushes_per_sec)]);
    t.row(&["cleaning cost".into(), fmt_f64(r.cleaning_cost)]);
    if let Some(b) = store.stats().breakdown() {
        t.row(&["busy: reads".into(), format!("{:.1}%", b.reads * 100.0)]);
        t.row(&[
            "busy: cleaning".into(),
            format!("{:.1}%", b.cleaning * 100.0),
        ]);
        t.row(&[
            "busy: flushing".into(),
            format!("{:.1}%", b.flushing * 100.0),
        ]);
        t.row(&["busy: erasing".into(), format!("{:.1}%", b.erasing * 100.0)]);
    }
    print!("{}", t.render());
    Ok(())
}

/// Shared timed run behind `stats` and `trace`: build the scaled TPC-A
/// system, enable the requested observability, run, return the store.
fn instrumented_run(args: &[String], trace_capacity: Option<usize>) -> Result<EnvyStore, String> {
    let rate: f64 = opt_parse(args, "--rate", 10_000.0)?;
    let txns: u64 = opt_parse(args, "--txns", 20_000)?;
    let util: f64 = opt_parse(args, "--util", 0.8)?;
    let (mut store, driver) = scaled_tpca(util)?;
    if let Some(capacity) = trace_capacity {
        store.enable_trace(capacity);
    }
    store.enable_sampler(Ns::from_millis(10), 1_024);
    run_timed(&mut store, &driver, rate, txns / 10, txns, 42).map_err(|e| e.to_string())?;
    Ok(store)
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let store = instrumented_run(args, None)?;
    let stats = store.stats();

    println!("-- latency percentiles --");
    let mut t = Table::new(&["series", "p50", "p95", "p99", "p999", "mean", "max"]);
    for (name, h) in [
        ("read", &stats.read_latency),
        ("write", &stats.write_latency),
    ] {
        let p = h.percentiles().ok_or("timed run recorded no latencies")?;
        let mut row = vec![name.to_string()];
        row.extend(p.iter().map(ToString::to_string));
        row.push(h.mean().to_string());
        row.push(h.max().map_or("-".into(), |m| m.to_string()));
        t.row(&row);
    }
    print!("{}", t.render());

    println!();
    println!("-- controller activity --");
    let mut t = Table::new(&["metric", "value"]);
    t.row(&["host reads".into(), stats.host_reads.to_string()]);
    t.row(&["host writes".into(), stats.host_writes.to_string()]);
    t.row(&["buffer hits".into(), stats.sram_write_hits.to_string()]);
    t.row(&["copy-on-writes".into(), stats.cow_ops.to_string()]);
    t.row(&["pages flushed".into(), stats.pages_flushed.to_string()]);
    t.row(&["cleaner programs".into(), stats.clean_programs.to_string()]);
    t.row(&["segments cleaned".into(), stats.cleans.to_string()]);
    t.row(&["erases".into(), stats.erases.to_string()]);
    t.row(&["suspensions".into(), stats.suspensions.to_string()]);
    t.row(&["cleaning cost".into(), fmt_f64(stats.cleaning_cost())]);
    if let Some(b) = stats.breakdown() {
        t.row(&["busy: reads".into(), format!("{:.1}%", b.reads * 100.0)]);
        t.row(&[
            "busy: cleaning".into(),
            format!("{:.1}%", b.cleaning * 100.0),
        ]);
        t.row(&[
            "busy: flushing".into(),
            format!("{:.1}%", b.flushing * 100.0),
        ]);
        t.row(&["busy: erasing".into(), format!("{:.1}%", b.erasing * 100.0)]);
    }
    print!("{}", t.render());

    println!();
    println!("-- per-segment wear --");
    let wear = store.engine().segment_report();
    let mut t = Table::new(&["metric", "value"]);
    t.row(&["segments".into(), wear.segments.len().to_string()]);
    t.row(&[
        "erase cycles (min/mean/max)".into(),
        format!(
            "{} / {} / {}",
            wear.min_erase_cycles,
            fmt_f64(wear.mean_erase_cycles),
            wear.max_erase_cycles
        ),
    ]);
    t.row(&["wear spread".into(), wear.wear_spread().to_string()]);
    t.row(&["wear imbalance".into(), fmt_f64(wear.wear_imbalance())]);
    let mut worst: Vec<_> = wear.segments.iter().collect();
    worst.sort_by(|a, b| {
        b.erase_cycles
            .cmp(&a.erase_cycles)
            .then(a.segment.cmp(&b.segment))
    });
    for s in worst.iter().take(3) {
        t.row(&[
            format!("most worn: seg {}", s.segment),
            format!(
                "{} cycles, bank {}, util {:.2}",
                s.erase_cycles, s.bank, s.utilization
            ),
        ]);
    }
    print!("{}", t.render());

    if let Some(series) = store.time_series() {
        println!();
        println!(
            "-- telemetry ({} windows of {}) --",
            series.rows().len(),
            series.window()
        );
        let mut t = Table::new(&{
            let mut cols = vec!["window end"];
            cols.extend(series.columns());
            cols
        });
        let rows = series.rows();
        let tail = rows.len().saturating_sub(5);
        for (end, values) in &rows[tail..] {
            let mut row = vec![end.to_string()];
            row.extend(values.iter().map(|v| fmt_f64(*v)));
            t.row(&row);
        }
        print!("{}", t.render());
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let last: usize = opt_parse(args, "--last", 40)?;
    let store = instrumented_run(args, Some(65_536))?;
    let trace = store.trace();
    println!(
        "{} events emitted, showing the most recent {}:",
        trace.total_emitted(),
        trace.len().min(last)
    );
    let mut t = Table::new(&["time", "seq", "event"]);
    for rec in trace.last(last) {
        t.row(&[
            rec.at.to_string(),
            rec.seq.to_string(),
            rec.event.to_string(),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

fn cmd_trace_gen(args: &[String]) -> Result<(), String> {
    let rate: f64 = opt_parse(args, "--rate", 1_000.0)?;
    let txns: u64 = opt_parse(args, "--txns", 100)?;
    let seed: u64 = opt_parse(args, "--seed", 42)?;
    let driver = AnalyticTpca::new(TpcaScale { branches: 1 });
    let trace = Trace::from_tpca(&driver, rate, txns, seed);
    println!("# TPC-A trace: {txns} transactions at {rate} TPS, seed {seed}");
    print!("{}", trace.to_text());
    Ok(())
}

fn cmd_trace_replay(args: &[String]) -> Result<(), String> {
    let path = opt(args, "--file").ok_or("trace-replay requires --file <path>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let trace = Trace::from_text(&text).map_err(|e| e.to_string())?;
    // Size the store to cover the trace's address range.
    let max_addr = trace
        .events()
        .iter()
        .map(|e| e.addr + e.len as u64)
        .max()
        .unwrap_or(4096);
    let pps = 2048u32;
    let pages = (max_addr / 256 + 1) * 10 / 8;
    let segments = ((pages / pps as u64) + 2).next_multiple_of(4).max(8) as u32;
    let mut config = EnvyConfig::scaled(4, segments, pps, 256).with_store_data(false);
    config.word_bytes = 8;
    let config = config.with_utilization(0.8);
    let mut store = EnvyStore::new(config).map_err(|e| e.to_string())?;
    store.prefill().map_err(|e| e.to_string())?;

    let mut t = Table::new(&["metric", "value"]);
    if flag(args, "--untimed") {
        trace.replay(&mut store).map_err(|e| e.to_string())?;
        t.row(&["events".into(), trace.len().to_string()]);
    } else {
        let stats = trace.replay_timed(&mut store).map_err(|e| e.to_string())?;
        t.row(&["events".into(), stats.events.to_string()]);
        t.row(&["simulated time".into(), stats.sim_time.to_string()]);
        t.row(&["read latency".into(), stats.read_latency.to_string()]);
        t.row(&["write latency".into(), stats.write_latency.to_string()]);
    }
    t.row(&[
        "flushes".into(),
        store.stats().pages_flushed.get().to_string(),
    ]);
    t.row(&["cleans".into(), store.stats().cleans.get().to_string()]);
    print!("{}", t.render());
    store
        .check_invariants()
        .map_err(|e| format!("invariant violation: {e}"))?;
    Ok(())
}

/// Parse `--shards` / `--scale` into a [`ServeConfig`].
fn serve_config(args: &[String]) -> Result<ServeConfig, String> {
    let shards: u32 = opt_parse(args, "--shards", 4)?;
    let slots: u32 = opt_parse(args, "--txn-slots", 1)?;
    if slots == 0 {
        return Err("--txn-slots must be at least 1".into());
    }
    let config = match opt(args, "--scale").unwrap_or("scaled") {
        "small" => ServeConfig::small(shards),
        "scaled" => ServeConfig::scaled(shards),
        other => return Err(format!("unknown scale `{other}` (use small or scaled)")),
    };
    Ok(config.with_txn_slots(slots))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let config = serve_config(args)?;
    let shards = config.shards;
    let store = ShardedStore::launch(config).map_err(|e| e.to_string())?;
    let plan = *store.plan();
    let listener = match opt(args, "--unix") {
        Some(path) => Listener::bind_unix(path),
        None => Listener::bind_tcp(opt(args, "--tcp").unwrap_or("127.0.0.1:7033")),
    }
    .map_err(|e| e.to_string())?;
    let driver = match opt(args, "--net-driver") {
        None => NetDriver::default(),
        Some(name) => NetDriver::parse(name)
            .ok_or_else(|| format!("unknown net driver `{name}` (use epoll|poll|threads)"))?,
    };
    let idle_ms: u64 = opt_parse(args, "--idle-timeout-ms", 0)?;
    let net = NetConfig {
        driver,
        idle_timeout: (idle_ms > 0).then(|| Duration::from_millis(idle_ms)),
    };
    let handle = serve_with(listener, store, net).map_err(|e| e.to_string())?;
    println!(
        "serving on {} ({} shards x {} bytes, {} driver)",
        handle.addr(),
        shards,
        plan.shard_bytes(),
        driver.name(),
    );
    let duration: u64 = opt_parse(args, "--duration-secs", 0)?;
    let summary = if duration == 0 {
        handle.wait()
    } else {
        std::thread::sleep(Duration::from_secs(duration));
        handle.shutdown()
    };
    let mut t = Table::new(&["metric", "value"]);
    t.row(&["connections".into(), summary.connections.to_string()]);
    t.row(&["requests admitted".into(), summary.requests.to_string()]);
    t.row(&["served".into(), summary.outcome.total_served().to_string()]);
    t.row(&[
        "timed out".into(),
        summary.outcome.total_timed_out().to_string(),
    ]);
    t.row(&[
        "sim makespan".into(),
        summary.outcome.max_sim_time().to_string(),
    ]);
    print!("{}", t.render());
    Ok(())
}

fn cmd_bench_serve(args: &[String]) -> Result<(), String> {
    let config = serve_config(args)?;
    let clients: u32 = opt_parse(args, "--clients", 4)?;
    let txns: u64 = opt_parse(args, "--txns", 2_000)?;
    let seed: u64 = opt_parse(args, "--seed", 24_301)?;
    let mut spec = LoadSpec::closed(clients, txns).with_seed(seed);
    if let Some(f) = opt(args, "--atomic") {
        let frac: f64 = f
            .parse()
            .ok()
            .filter(|f| (0.0..=1.0).contains(f))
            .ok_or_else(|| format!("invalid value `{f}` for --atomic (want 0..=1)"))?;
        spec = spec.atomic(frac);
    }

    // Socket mode: drive a live `envy-served` instead of an in-process
    // store. `--shards`/`--scale` must describe the remote server — the
    // wire protocol does not carry the shard plan.
    if let Some(path) = opt(args, "--unix") {
        let plan = ShardPlan::new(config.shards, config.store.logical_bytes());
        let report = loadgen::run_socket(|| Client::connect_unix(path), plan, &spec)
            .map_err(|e| e.to_string())?;
        if flag(args, "--shutdown") {
            let mut c = Client::connect_unix(path).map_err(|e| e.to_string())?;
            c.shutdown_server().map_err(|e| format!("{e:?}"))?;
        }
        print_load_report(&report, None);
        return Ok(());
    }
    if let Some(addr) = opt(args, "--connect") {
        let plan = ShardPlan::new(config.shards, config.store.logical_bytes());
        let report = loadgen::run_socket(|| Client::connect_tcp(addr), plan, &spec)
            .map_err(|e| e.to_string())?;
        if flag(args, "--shutdown") {
            let mut c = Client::connect_tcp(addr).map_err(|e| e.to_string())?;
            c.shutdown_server().map_err(|e| format!("{e:?}"))?;
        }
        print_load_report(&report, None);
        return Ok(());
    }

    let store = ShardedStore::launch(config).map_err(|e| e.to_string())?;
    let report = loadgen::run_inproc(&store.handle(), &spec);
    let outcome = store.shutdown();
    print_load_report(&report, Some(outcome.max_sim_time()));
    Ok(())
}

enum KvCmd {
    Get,
    Put,
    Del,
    Scan,
}

fn cmd_kv(args: &[String], cmd: KvCmd) -> Result<(), String> {
    let mut client = match opt(args, "--unix") {
        Some(path) => Client::connect_unix(path),
        None => Client::connect_tcp(opt(args, "--connect").unwrap_or("127.0.0.1:7033")),
    }
    .map_err(|e| e.to_string())?;
    let shard: u32 = opt_parse(args, "--shard", 0)?;
    let txn: u64 = opt_parse(args, "--txn", 0)?;
    let key = || -> Result<u64, String> {
        opt(args, "--key")
            .ok_or("this kv command requires --key <n>")?
            .parse()
            .map_err(|_| "invalid --key".into())
    };
    match cmd {
        KvCmd::Get => match client.kv_get(shard, key()?).map_err(|e| format!("{e:?}"))? {
            Some(value) => println!("{}", String::from_utf8_lossy(&value)),
            None => println!("(miss)"),
        },
        KvCmd::Put => {
            let value = opt(args, "--value").ok_or("kv-put requires --value <text>")?;
            client
                .kv_put(shard, key()?, value.as_bytes(), txn)
                .map_err(|e| format!("{e:?}"))?;
            println!("ok");
        }
        KvCmd::Del => {
            let existed = client
                .kv_delete(shard, key()?, txn)
                .map_err(|e| format!("{e:?}"))?;
            println!("{}", if existed { "deleted" } else { "(miss)" });
        }
        KvCmd::Scan => {
            let start: u64 = opt_parse(args, "--start", 0)?;
            let limit: u32 = opt_parse(args, "--limit", 10)?;
            let items = client
                .kv_scan(shard, start, limit)
                .map_err(|e| format!("{e:?}"))?;
            for (k, value) in &items {
                println!("{k}\t{}", String::from_utf8_lossy(value));
            }
            println!("({} records)", items.len());
        }
    }
    Ok(())
}

fn print_load_report(report: &loadgen::LoadReport, sim: Option<Ns>) {
    let mut t = Table::new(&["metric", "value"]);
    t.row(&["completed txns".into(), report.completed_txns.to_string()]);
    if report.aborted_txns > 0 || report.txn_conflicts > 0 || report.txn_conflict_refusals > 0 {
        t.row(&["aborted txns".into(), report.aborted_txns.to_string()]);
        t.row(&["slot-busy begins".into(), report.txn_conflicts.to_string()]);
        t.row(&[
            "write-set conflicts".into(),
            report.txn_conflict_refusals.to_string(),
        ]);
        t.row(&[
            "conflict retries".into(),
            report.txn_conflict_retries.to_string(),
        ]);
    }
    t.row(&["completed ops".into(), report.completed_ops.to_string()]);
    t.row(&["busy retries".into(), report.busy_retries.to_string()]);
    t.row(&["errors".into(), report.errors.to_string()]);
    t.row(&["wall TPS".into(), fmt_f64(report.throughput_tps())]);
    if let Some(sim) = sim {
        let sim_tps = if sim.as_nanos() > 0 {
            report.completed_txns as f64 / (sim.as_nanos() as f64 / 1e9)
        } else {
            0.0
        };
        t.row(&["sim makespan".into(), sim.to_string()]);
        t.row(&["sim aggregate TPS".into(), fmt_f64(sim_tps)]);
    }
    if let Some([p50, p95, p99, p999]) = report.txn_latency.percentiles() {
        t.row(&["txn p50".into(), p50.to_string()]);
        t.row(&["txn p95".into(), p95.to_string()]);
        t.row(&["txn p99".into(), p99.to_string()]);
        t.row(&["txn p999".into(), p999.to_string()]);
    }
    print!("{}", t.render());
}
