#![warn(missing_docs)]
//! # envy — a reproduction of the eNVy non-volatile main-memory storage system
//!
//! This is the umbrella crate of the workspace: it re-exports every
//! subsystem so examples and downstream users can depend on a single crate.
//!
//! * [`core`] — the eNVy controller: copy-on-write, page remapping, the
//!   SRAM write buffer, cleaning policies, wear leveling, and the timing
//!   model (the paper's primary contribution).
//! * [`flash`] — the Flash array substrate (chips, banks, segments).
//! * [`sram`] — the battery-backed SRAM substrate.
//! * [`sim`] — simulated time, deterministic PRNG, distributions, stats.
//! * [`btree`] — an order-32 B-Tree over the linear memory interface.
//! * [`workload`] — TPC-A and synthetic access-pattern generators.
//! * [`ramdisk`] — a block-device adapter and a minimal filesystem.
//! * [`heap`] — a persistent allocator and a crash-safe append log.
//! * [`kv`] — a key-value store layering a [`btree`] index over [`heap`]
//!   records: variable-size values, ordered scans, delete.
//! * [`server`] — a sharded concurrent front end: per-shard worker
//!   threads with bounded queues and backpressure, a binary wire
//!   protocol over TCP/Unix sockets, and a multi-client load generator.
//!
//! ## Quickstart
//!
//! ```
//! use envy::core::{EnvyConfig, EnvyStore};
//!
//! # fn main() -> Result<(), envy::core::EnvyError> {
//! // A small array: 16 segments of 64 pages of 256 bytes.
//! let config = EnvyConfig::small_test();
//! let mut store = EnvyStore::new(config)?;
//!
//! // Word-addressable, in-place-update semantics over Flash.
//! store.write(0x1000, &42u64.to_le_bytes())?;
//! let mut buf = [0u8; 8];
//! store.read(0x1000, &mut buf)?;
//! assert_eq!(u64::from_le_bytes(buf), 42);
//! # Ok(())
//! # }
//! ```

pub use envy_btree as btree;
pub use envy_core as core;
pub use envy_flash as flash;
pub use envy_heap as heap;
pub use envy_kv as kv;
pub use envy_ramdisk as ramdisk;
pub use envy_server as server;
pub use envy_sim as sim;
pub use envy_sram as sram;
pub use envy_workload as workload;
