#!/bin/sh
# Regenerate every figure/table of the paper's evaluation.
# Usage: ./run_experiments.sh [--quick] [--jobs N] [--paper]
# All flags are forwarded to every benchmark binary; --jobs N runs each
# binary's parameter sweep on N worker threads (default: all cores).
set -e
OUT=results
mkdir -p "$OUT"
# Build the bench package once up front and invoke the binaries directly:
# `cargo run` per figure pays a rebuild check ~20 times per sweep
# (visible in results/run.log).
cargo build --release -p envy-bench
BIN=target/release
for bin in table_fig01 table_fig12 fig06_cleaning_cost fig08_policy_comparison \
           fig09_partition_size fig10_segment_count fig13_throughput \
           fig14_utilization fig15_latency breakdown_53 lifetime_55 ext_parallel ext_cost_benefit \
           ext_fault_recovery ext_observability ext_serve ext_txn ext_ycsb \
           abl_buffer_size abl_page_size abl_wear_threshold abl_lg_mechanisms abl_mmu \
           abl_drifting_hotspot; do
  echo "=== $bin ==="
  "$BIN/$bin" "$@" > "$OUT/$bin.txt"
done
echo "all results in $OUT/"
