#!/bin/sh
# Full-scale (2 GB) timed runs, as in the paper's Figure 12 configuration.
# The measurement windows must be long relative to the 64 MB write buffer
# (32 768-page flush headroom), hence the large transaction counts.
set -e
OUT=results
mkdir -p "$OUT"
# One build up front; the binaries are then invoked directly instead of
# paying a `cargo run` rebuild check per figure.
cargo build --release -p envy-bench
BIN=target/release
"$BIN/fig13_throughput" --paper --txns=250000 > "$OUT/fig13_throughput_paper.txt"
echo fig13 done
"$BIN/fig15_latency"    --paper --txns=250000 > "$OUT/fig15_latency_paper.txt"
echo fig15 done
"$BIN/breakdown_53"     --paper --txns=200000 > "$OUT/breakdown_53_paper.txt"
echo breakdown done
"$BIN/lifetime_55"      --paper --txns=200000 > "$OUT/lifetime_55_paper.txt"
echo lifetime done
