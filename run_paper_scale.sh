#!/bin/sh
# Full-scale (2 GB) timed runs, as in the paper's Figure 12 configuration.
# The measurement windows must be long relative to the 64 MB write buffer
# (32 768-page flush headroom), hence the large transaction counts.
set -e
OUT=results
mkdir -p "$OUT"
cargo run --release -p envy-bench --bin fig13_throughput -- --paper --txns=250000 > "$OUT/fig13_throughput_paper.txt"
echo fig13 done
cargo run --release -p envy-bench --bin fig15_latency   -- --paper --txns=250000 > "$OUT/fig15_latency_paper.txt"
echo fig15 done
cargo run --release -p envy-bench --bin breakdown_53    -- --paper --txns=200000 > "$OUT/breakdown_53_paper.txt"
echo breakdown done
cargo run --release -p envy-bench --bin lifetime_55     -- --paper --txns=200000 > "$OUT/lifetime_55_paper.txt"
echo lifetime done
