//! Quickstart: eNVy as linear non-volatile memory.
//!
//! Creates a small eNVy store, performs word-granularity reads and writes
//! (the paper's §1 interface), survives a power failure, and prints the
//! controller activity that happened behind the scenes.
//!
//! Run with: `cargo run --example quickstart`

use envy::core::{EnvyConfig, EnvyError, EnvyStore};

fn main() -> Result<(), EnvyError> {
    // 16 segments of 64 × 256-byte pages with payload storage.
    let mut store = EnvyStore::new(EnvyConfig::small_test())?;
    println!(
        "created a {} KB eNVy array ({} segments, {}-byte pages)",
        store.size() / 1024,
        store.config().geometry.segments(),
        store.config().geometry.page_bytes(),
    );

    // Word-sized, in-place update semantics — no blocks, no save format.
    store.write(0x1000, &42u64.to_le_bytes())?;
    store.write(0x1008, b"hello, eNVy")?;
    let mut word = [0u8; 8];
    store.read(0x1000, &mut word)?;
    assert_eq!(u64::from_le_bytes(word), 42);

    let mut text = [0u8; 11];
    store.read(0x1008, &mut text)?;
    println!(
        "read back: {} / {:?}",
        u64::from_le_bytes(word),
        std::str::from_utf8(&text)
    );

    // Overwrite in place — on Flash this is a copy-on-write behind the
    // scenes, but the interface never shows it.
    store.write(0x1000, &43u64.to_le_bytes())?;
    store.read(0x1000, &mut word)?;
    assert_eq!(u64::from_le_bytes(word), 43);

    // Non-volatile: a power failure loses nothing.
    store.power_failure();
    let report = store.recover()?;
    store.read(0x1000, &mut word)?;
    assert_eq!(u64::from_le_bytes(word), 43);
    println!(
        "survived power failure (buffered pages preserved: {})",
        report.buffered_pages
    );

    let stats = store.stats();
    println!(
        "controller activity: {} copy-on-writes, {} SRAM hits, {} flushes, {} cleans",
        stats.cow_ops.get(),
        stats.sram_write_hits.get(),
        stats.pages_flushed.get(),
        stats.cleans.get(),
    );
    store.check_invariants().expect("consistent");
    println!("all invariants hold");
    Ok(())
}
