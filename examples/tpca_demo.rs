//! TPC-A on eNVy: the paper's §5.2 workload, functionally.
//!
//! Builds a real (scaled-down) TPC-A database — branch/teller/account
//! records plus three order-32 B-Tree indexes — directly in the eNVy
//! linear array, runs transactions, verifies that money is conserved, and
//! reports the Flash-management work the controller performed.
//!
//! Run with: `cargo run --release --example tpca_demo`

use envy::core::{EnvyConfig, EnvyStore};
use envy::sim::rng::Rng;
use envy::workload::{FunctionalTpca, TpcaLayout, TpcaScale, Transaction};

fn main() {
    // One branch = 10 tellers = 100,000 accounts (the paper's ratios).
    let scale = TpcaScale { branches: 1 };
    let need = TpcaLayout::new(scale).total_bytes;

    // Size an array that holds the database at ~75% utilization.
    let pps = 2048u32;
    let pages_needed = (need * 10 / 7) / 256;
    let segments = (pages_needed / pps as u64 + 2).next_multiple_of(4) as u32;
    let config = EnvyConfig::scaled(4, segments, pps, 256).with_utilization(0.75);
    let mut store = EnvyStore::new(config).expect("valid config");
    println!(
        "eNVy array: {} MB; TPC-A database: {} accounts in {} bytes",
        store.size() / (1024 * 1024),
        scale.accounts(),
        need
    );

    let db = FunctionalTpca::setup(&mut store, scale).expect("setup fits");
    println!(
        "index depths: branch {}, teller {}, account {}",
        db.layout().branch_tree.depth(),
        db.layout().teller_tree.depth(),
        db.layout().account_tree.depth()
    );

    let mut rng = Rng::seed_from(2026);
    let mut total = 0i64;
    let transactions = 5_000;
    for _ in 0..transactions {
        let txn = Transaction::generate(scale, &mut rng);
        total += txn.delta;
        db.run_transaction(&mut store, &txn).expect("transaction");
    }

    // Money conservation: branch balances aggregate every delta.
    let mut branch_total = 0i64;
    for b in 0..scale.branches {
        branch_total += db.balance(&mut store, 0, b).expect("balance read");
    }
    assert_eq!(branch_total, total);
    println!("{transactions} transactions; branch balances sum to {branch_total} = sum of deltas");

    let stats = store.stats();
    println!(
        "flash management: {} COWs, {} flushes, {} cleans, cleaning cost {:.2}",
        stats.cow_ops.get(),
        stats.pages_flushed.get(),
        stats.cleans.get(),
        stats.cleaning_cost()
    );
    store.check_invariants().expect("consistent");
    println!("all invariants hold");
}
