//! Wear leveling (§4.3): even wear under a pathologically hot workload.
//!
//! Hammers a small hot region and compares the erase-cycle spread across
//! segments with wear leveling enabled (the paper's 100-cycle rule,
//! scaled down) and disabled.
//!
//! Run with: `cargo run --release --example wear_leveling`

use envy::core::{EnvyConfig, EnvyStore, PolicyKind};
use envy::sim::rng::Rng;

fn run(wear_threshold: u64) -> (u64, u64, u64) {
    let config = EnvyConfig::scaled(2, 8, 64, 256)
        .with_policy(PolicyKind::LocalityGathering)
        .with_utilization(0.7)
        .with_buffer_pages(16)
        .with_store_data(false)
        .with_wear_threshold(wear_threshold);
    let mut store = EnvyStore::new(config).expect("valid config");
    store.prefill().expect("prefill");
    let mut rng = Rng::seed_from(7);
    for _ in 0..60_000 {
        let lp = rng.below(128); // hot region: 128 pages of 358
        store.write(lp * 256, &[1]).expect("write");
    }
    let flash = store.engine().flash();
    store.check_invariants().expect("consistent");
    (
        flash.min_erase_cycles(),
        flash.max_erase_cycles(),
        store.stats().wear_swaps.get(),
    )
}

fn main() {
    let (min_off, max_off, _) = run(u64::MAX);
    println!(
        "without wear leveling: cycles span {min_off}..{max_off} (spread {})",
        max_off - min_off
    );
    let (min_on, max_on, swaps) = run(10);
    println!(
        "with wear leveling (threshold 10): cycles span {min_on}..{max_on} (spread {}, {swaps} swaps)",
        max_on - min_on
    );
    println!(
        "lifetime is set by the most-worn segment: leveling extends it ~{:.1}x here",
        max_off as f64 / max_on.max(1) as f64
    );
}
