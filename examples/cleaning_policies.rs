//! Cleaning-policy comparison in miniature (§4 / Figure 8).
//!
//! Runs the four cleaning policies against a uniform and a highly skewed
//! write stream on a small array and prints the resulting cleaning costs
//! — the number of cleaner program operations per flushed page.
//!
//! Run with: `cargo run --release --example cleaning_policies`

use envy::core::PolicyKind;
use envy::sim::report::{fmt_f64, Table};
use envy::workload::CleaningStudy;

fn main() {
    let policies: [(&str, PolicyKind); 4] = [
        ("greedy", PolicyKind::Greedy),
        ("fifo", PolicyKind::Fifo),
        ("locality-gathering", PolicyKind::LocalityGathering),
        (
            "hybrid-8",
            PolicyKind::Hybrid {
                segments_per_partition: 8,
            },
        ),
    ];
    let mut table = Table::new(&["policy", "uniform 50/50", "skewed 10/90"]);
    for (name, policy) in policies {
        let uniform = CleaningStudy::sized(64, 128, policy, (50, 50))
            .run()
            .expect("study");
        let skewed = CleaningStudy::sized(64, 128, policy, (10, 90))
            .run()
            .expect("study");
        table.row(&[
            name.to_string(),
            fmt_f64(uniform.cleaning_cost),
            fmt_f64(skewed.cleaning_cost),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("the paper's conclusions in miniature:");
    println!(" - greedy/FIFO handle uniform traffic well but degrade with locality");
    println!(" - locality gathering is expensive for uniform traffic, good under skew");
    println!(" - the hybrid tracks the best of both (§4.4)");
}
