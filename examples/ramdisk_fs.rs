//! A filesystem on eNVy through the RAM-disk compatibility path (§1).
//!
//! "For backwards compatibility, a simple RAM disk program can make a
//! memory array usable by a standard file system." This example formats
//! a block device over the eNVy array, stores files, power-fails the
//! system, remounts, and reads everything back.
//!
//! Run with: `cargo run --release --example ramdisk_fs`

use envy::core::{EnvyConfig, EnvyStore};
use envy::ramdisk::{BlockDevice, SimpleFs};

fn main() {
    let config = EnvyConfig::scaled(4, 32, 256, 256).with_utilization(0.7);
    let mut store = EnvyStore::new(config).expect("valid config");
    let blocks = store.size() / 512 - 16; // leave headroom below the cap
    let dev = BlockDevice::new(0, 512, blocks);
    println!(
        "block device over eNVy: {} sectors of 512 B ({} KB)",
        dev.blocks(),
        dev.capacity() / 1024
    );

    let mut fs = SimpleFs::format(&mut store, dev).expect("format");
    fs.write_file(
        &mut store,
        "readme.txt",
        b"eNVy: non-volatile main memory storage",
    )
    .expect("write");
    let big: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
    fs.write_file(&mut store, "data.bin", &big).expect("write");
    fs.write_file(&mut store, "temp.log", b"scratch")
        .expect("write");
    fs.delete(&mut store, "temp.log").expect("delete");

    println!("files:");
    for (name, size) in fs.list(&mut store).expect("list") {
        println!("  {name:20} {size} bytes");
    }

    // Power failure: the filesystem lives in non-volatile memory.
    store.power_failure();
    store.recover().expect("recover");
    let fs2 = SimpleFs::mount(&mut store, dev).expect("remount");
    let contents = fs2.read_file(&mut store, "data.bin").expect("read");
    assert_eq!(contents, big);
    println!(
        "power failure survived: data.bin intact after remount ({} bytes)",
        contents.len()
    );

    let stats = store.stats();
    println!(
        "flash management underneath: {} COWs, {} flushes, {} cleans",
        stats.cow_ops.get(),
        stats.pages_flushed.get(),
        stats.cleans.get()
    );
    store.check_invariants().expect("consistent");
}
