//! A durable key-value store in ~60 lines, the way §1 promises:
//! data structures live directly in non-volatile memory, so "persistence"
//! is just a write-ahead log in the array plus replay on startup.
//!
//! Run with: `cargo run --release --example persistent_kv`

use envy::core::{EnvyConfig, EnvyStore};
use envy::heap::Log;
use std::collections::HashMap;

/// Set = `key=value`, delete = `key`.
fn apply(map: &mut HashMap<String, String>, payload: &[u8]) {
    let text = String::from_utf8_lossy(payload);
    match text.split_once('=') {
        Some((k, v)) => map.insert(k.to_string(), v.to_string()),
        None => map.remove(text.as_ref()),
    };
}

fn replay(store: &mut EnvyStore, log: &Log) -> HashMap<String, String> {
    let mut map = HashMap::new();
    for record in log.records(store).expect("log readable") {
        apply(&mut map, &record.payload);
    }
    map
}

fn main() {
    let mut store = EnvyStore::new(EnvyConfig::small_test()).expect("valid config");
    let log = Log::create(&mut store, 0, 64 * 1024).expect("log fits");

    // Every mutation is one appended record — committed the moment
    // append returns, because the array is non-volatile.
    for op in [
        "lang=rust",
        "paper=eNVy",
        "year=1994",
        "venue=ASPLOS",
        "lang=Rust",
    ] {
        log.append(&mut store, op.as_bytes()).expect("append");
    }
    log.append(&mut store, b"year").expect("append"); // delete "year"

    // Power failure: nothing to fsync, nothing to lose.
    store.power_failure();
    store.recover().expect("recover");

    // A fresh process re-opens the log from the array and replays.
    let log = Log::open(&mut store, 0).expect("log present");
    let map = replay(&mut store, &log);
    println!(
        "recovered {} keys from {} log records:",
        map.len(),
        log.len(&mut store).unwrap()
    );
    let mut keys: Vec<_> = map.iter().collect();
    keys.sort();
    for (k, v) in keys {
        println!("  {k} = {v}");
    }
    assert_eq!(map.get("lang").map(String::as_str), Some("Rust"));
    assert_eq!(map.get("year"), None);
    store.check_invariants().expect("consistent");
}
