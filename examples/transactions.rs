//! Hardware atomic transactions (§6).
//!
//! "eNVy automatically copies all modified data from Flash to SRAM as
//! part of its copy-on-write mechanism. The original data in Flash is not
//! destroyed, and it can be used to provide a free shadow copy."
//!
//! This example transfers money between two account records atomically,
//! aborts one transfer halfway, and shows the shadows surviving a
//! cleaning pass.
//!
//! Run with: `cargo run --release --example transactions`

use envy::core::{EnvyConfig, EnvyError, EnvyStore};

const ALICE: u64 = 0x100;
const BOB: u64 = 0x2000;

fn balance(store: &mut EnvyStore, addr: u64) -> Result<i64, EnvyError> {
    let mut b = [0u8; 8];
    store.read(addr, &mut b)?;
    Ok(i64::from_le_bytes(b))
}

fn set_balance(store: &mut EnvyStore, addr: u64, v: i64) -> Result<(), EnvyError> {
    store.write(addr, &v.to_le_bytes())
}

fn main() -> Result<(), EnvyError> {
    let mut store = EnvyStore::new(EnvyConfig::small_test())?;
    set_balance(&mut store, ALICE, 1_000)?;
    set_balance(&mut store, BOB, 250)?;

    // A committed transfer.
    let txn = store.txn_begin()?;
    set_balance(&mut store, ALICE, 700)?;
    set_balance(&mut store, BOB, 550)?;
    store.txn_commit(txn)?;
    println!(
        "after committed transfer: alice={} bob={}",
        balance(&mut store, ALICE)?,
        balance(&mut store, BOB)?
    );

    // An aborted transfer: rollback restores the shadow copies.
    let txn = store.txn_begin()?;
    set_balance(&mut store, ALICE, 0)?;
    set_balance(&mut store, BOB, 1_250)?;
    println!(
        "  mid-transaction: alice=0 bob=1250, shadows={}",
        store.engine().shadow_pages()
    );
    store.txn_abort(txn)?;
    println!(
        "after abort: alice={} bob={} (restored from Flash shadows)",
        balance(&mut store, ALICE)?,
        balance(&mut store, BOB)?
    );
    assert_eq!(balance(&mut store, ALICE)?, 700);
    assert_eq!(balance(&mut store, BOB)?, 550);

    // Shadows survive cleaning: the cleaner relocates them (§6: the
    // controller must "protect them from being cleaned").
    let txn = store.txn_begin()?;
    set_balance(&mut store, ALICE, 9_999)?;
    let positions = store.engine().positions();
    let mut ops = Vec::new();
    for pos in 0..positions {
        store.engine_mut().clean_position(pos, &mut ops)?;
        ops.clear();
    }
    println!(
        "cleaned all {} positions; shadow pages relocated: {}",
        positions,
        store.stats().shadow_programs.get()
    );
    store.txn_abort(txn)?;
    assert_eq!(balance(&mut store, ALICE)?, 700);
    println!("rollback still correct after cleaning: alice=700");
    store.check_invariants().expect("consistent");
    Ok(())
}
