//! Cross-crate integration: B-Trees living in the eNVy array, under
//! cleaning pressure and across power failures.

use envy::btree::BTree;
use envy::core::{EnvyConfig, EnvyStore, PolicyKind};
use envy::sim::rng::Rng;
use std::collections::BTreeMap;

fn store(policy: PolicyKind) -> EnvyStore {
    let config = EnvyConfig::scaled(4, 16, 256, 256)
        .with_policy(policy)
        .with_utilization(0.7);
    EnvyStore::new(config).expect("valid config")
}

#[test]
fn btree_grows_through_cleaning() {
    let mut s = store(PolicyKind::paper_default());
    let region_len = 512 * 1024;
    let mut tree = BTree::create(&mut s, 0, region_len).unwrap();
    let mut model = BTreeMap::new();
    let mut rng = Rng::seed_from(1);
    for _ in 0..20_000u32 {
        let k = rng.below(4_000);
        let v = rng.next_u64();
        model.insert(k, v);
        tree.insert(&mut s, k, v).unwrap();
    }
    // Insert churn rewrote nodes repeatedly: cleaning must have run.
    assert!(s.stats().cleans.get() > 0, "cleaning should have occurred");
    for (&k, &v) in &model {
        assert_eq!(tree.get(&mut s, k).unwrap(), Some(v));
        assert_eq!(tree.get_probed(&mut s, k).unwrap(), Some(v));
    }
    s.check_invariants().unwrap();
}

#[test]
fn btree_survives_power_failure() {
    let mut s = store(PolicyKind::Greedy);
    let mut tree = BTree::create(&mut s, 4096, 256 * 1024).unwrap();
    for k in 0..2_000u64 {
        tree.insert(&mut s, k, k * 3).unwrap();
    }
    s.power_failure();
    s.recover().unwrap();
    // Reopen from the non-volatile header.
    let reopened = BTree::open(&mut s, 4096).unwrap();
    for k in 0..2_000u64 {
        assert_eq!(reopened.get(&mut s, k).unwrap(), Some(k * 3));
    }
}

#[test]
fn btree_survives_interrupted_clean() {
    let mut s = store(PolicyKind::Fifo);
    let mut tree = BTree::create(&mut s, 0, 512 * 1024).unwrap();
    let mut rng = Rng::seed_from(9);
    for _ in 0..10_000u32 {
        tree.insert(&mut s, rng.below(3_000), rng.next_u64())
            .unwrap();
    }
    // Interrupt a clean of the fullest position mid-copy, crash, recover.
    let pos = (0..s.engine().positions())
        .max_by_key(|&p| s.engine().flash().valid_pages(s.engine().segment_at(p)))
        .expect("positions exist");
    let mut ops = Vec::new();
    s.engine_mut().clean_interrupted(pos, 7, &mut ops).unwrap();
    s.power_failure();
    let report = s.recover().unwrap();
    assert!(report.resumed_clean);
    // Every key is still present with a consistent value.
    let reopened = BTree::open(&mut s, 0).unwrap();
    let mut rng = Rng::seed_from(9);
    let mut model = BTreeMap::new();
    for _ in 0..10_000u32 {
        model.insert(rng.below(3_000), rng.next_u64());
    }
    for (&k, &v) in &model {
        assert_eq!(reopened.get(&mut s, k).unwrap(), Some(v), "key {k}");
    }
    s.check_invariants().unwrap();
}

#[test]
fn two_trees_share_the_array() {
    let mut s = store(PolicyKind::LocalityGathering);
    let mut left = BTree::create(&mut s, 0, 128 * 1024).unwrap();
    let mut right = BTree::create(&mut s, 512 * 1024, 128 * 1024).unwrap();
    for k in 0..1_500u64 {
        left.insert(&mut s, k, k).unwrap();
        right.insert(&mut s, k, k + 1_000_000).unwrap();
    }
    for k in 0..1_500u64 {
        assert_eq!(left.get(&mut s, k).unwrap(), Some(k));
        assert_eq!(right.get(&mut s, k).unwrap(), Some(k + 1_000_000));
    }
    s.check_invariants().unwrap();
}
