//! Cross-crate integration: the persistent heap structures over the
//! eNVy controller, across cleaning and power failures.

use envy::core::{EnvyConfig, EnvyError, EnvyStore, PolicyKind, TxnMemory};
use envy::heap::{Arena, HeapError, Log};
use envy::sim::rng::Rng;

fn store() -> EnvyStore {
    let config = EnvyConfig::scaled(4, 16, 256, 256)
        .with_policy(PolicyKind::paper_default())
        .with_utilization(0.7);
    let mut s = EnvyStore::new(config).expect("valid config");
    // Start from the steady-state (populated) array so heap writes go
    // through real copy-on-write and cleaning.
    s.prefill().expect("prefill");
    s
}

#[test]
fn arena_survives_power_failure() {
    let mut s = store();
    let mut arena = Arena::create(&mut s, 0, 128 * 1024).unwrap();
    let a = arena.alloc(&mut s, 64).unwrap();
    s.write(a, b"durable allocation").unwrap();
    s.power_failure();
    s.recover().unwrap();
    let mut reopened = Arena::open(&mut s, 0).unwrap();
    let mut buf = [0u8; 18];
    s.read(a, &mut buf).unwrap();
    assert_eq!(&buf, b"durable allocation");
    reopened.free(&mut s, a).unwrap();
    reopened.check(&mut s).unwrap();
    s.check_invariants().unwrap();
}

#[test]
fn arena_churn_under_cleaning() {
    let mut s = store();
    let mut arena = Arena::create(&mut s, 0, 256 * 1024).unwrap();
    let mut rng = Rng::seed_from(5);
    let mut live: Vec<(u64, u8, u64)> = Vec::new(); // (addr, fill byte, size)
    for _ in 0..20_000 {
        if live.len() < 64 && rng.chance(0.7) {
            let size = rng.range(8, 800);
            if let Ok(addr) = arena.alloc(&mut s, size) {
                let byte = rng.next_u64() as u8;
                s.write(addr, &vec![byte; size as usize]).unwrap();
                live.push((addr, byte, size));
            }
        } else if !live.is_empty() {
            let i = rng.below(live.len() as u64) as usize;
            let (addr, byte, size) = live.swap_remove(i);
            // Contents intact right up to the free.
            let mut buf = vec![0u8; size as usize];
            s.read(addr, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == byte), "corrupted allocation");
            arena.free(&mut s, addr).unwrap();
        }
    }
    assert!(
        s.stats().cleans.get() > 0,
        "heap churn should trigger cleaning"
    );
    arena.check(&mut s).unwrap();
    s.check_invariants().unwrap();
}

#[test]
fn log_survives_interrupted_clean() {
    let mut s = store();
    let log = Log::create(&mut s, 4096, 128 * 1024).unwrap();
    for i in 0..200u32 {
        log.append(&mut s, format!("record {i}").as_bytes())
            .unwrap();
    }
    // Push the buffered log pages into Flash so the clean has real work.
    s.flush_all().unwrap();
    let pos = (0..s.engine().positions())
        .max_by_key(|&p| s.engine().flash().valid_pages(s.engine().segment_at(p)))
        .unwrap();
    let mut ops = Vec::new();
    s.engine_mut().clean_interrupted(pos, 6, &mut ops).unwrap();
    s.power_failure();
    assert!(s.recover().unwrap().resumed_clean);
    let log = Log::open(&mut s, 4096).unwrap();
    let records = log.records(&mut s).unwrap();
    assert_eq!(records.len(), 200);
    assert_eq!(records[199].payload, b"record 199");
    s.check_invariants().unwrap();
}

#[test]
fn log_inside_storage_transaction() {
    // A storage-level transaction (§6) wraps log appends when the writes
    // are routed through its write set: abort makes the records vanish
    // atomically. Writes never join a transaction implicitly — a plain
    // append while the transaction owns the log's pages is refused with
    // a typed conflict, not folded into the rollback.
    let mut s = store();
    let log = Log::create(&mut s, 0, 64 * 1024).unwrap();
    log.append(&mut s, b"before").unwrap();
    let txn = s.txn_begin().unwrap();
    {
        let mut mem = TxnMemory::new(&mut s, txn);
        log.append(&mut mem, b"inside-1").unwrap();
        log.append(&mut mem, b"inside-2").unwrap();
        assert_eq!(log.len(&mut mem).unwrap(), 3);
    }
    // The log's pages are in the transaction's write set, so the plain
    // path is refused up front — nothing lands, nothing joins.
    assert!(matches!(
        log.append(&mut s, b"plain"),
        Err(HeapError::Memory(EnvyError::TxnConflict { .. }))
    ));
    s.txn_abort(txn).unwrap();
    let records = log.records(&mut s).unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].payload, b"before");
    // And the log still accepts new records.
    log.append(&mut s, b"after").unwrap();
    assert_eq!(log.len(&mut s).unwrap(), 2);
    s.check_invariants().unwrap();
}
