//! Cross-crate integration: the full TPC-A stack on the eNVy controller
//! under every cleaning policy.

use envy::core::{EnvyConfig, EnvyStore, PolicyKind, TxnMemory};
use envy::sim::rng::Rng;
use envy::workload::{FunctionalTpca, TpcaLayout, TpcaScale, Transaction};

fn tpca_store(policy: PolicyKind) -> (EnvyStore, TpcaScale) {
    let scale = TpcaScale { branches: 1 };
    let need = TpcaLayout::new(scale).total_bytes;
    let pages_needed = (need * 10 / 7) / 256;
    let pps = 2048u32;
    let segments = (pages_needed / pps as u64 + 2).next_multiple_of(4) as u32;
    let config = EnvyConfig::scaled(4, segments, pps, 256)
        .with_policy(policy)
        .with_utilization(0.75);
    (EnvyStore::new(config).expect("valid config"), scale)
}

fn run_and_check(policy: PolicyKind, transactions: u32, seed: u64) {
    let (mut store, scale) = tpca_store(policy);
    let db = FunctionalTpca::setup(&mut store, scale).expect("setup");
    let mut rng = Rng::seed_from(seed);
    let mut expected_total = 0i64;
    let mut teller_expect = vec![0i64; scale.tellers() as usize];
    for _ in 0..transactions {
        let txn = Transaction::generate(scale, &mut rng);
        expected_total += txn.delta;
        teller_expect[txn.teller as usize] += txn.delta;
        db.run_transaction(&mut store, &txn).expect("transaction");
    }
    // Conservation at every level of the hierarchy.
    let mut branches = 0i64;
    for b in 0..scale.branches {
        branches += db.balance(&mut store, 0, b).unwrap();
    }
    assert_eq!(branches, expected_total, "{policy:?}: branch conservation");
    for t in 0..scale.tellers() {
        assert_eq!(
            db.balance(&mut store, 1, t).unwrap(),
            teller_expect[t as usize],
            "{policy:?}: teller {t}"
        );
    }
    store.check_invariants().unwrap();
}

#[test]
fn tpca_on_greedy() {
    run_and_check(PolicyKind::Greedy, 3_000, 11);
}

#[test]
fn tpca_on_fifo() {
    run_and_check(PolicyKind::Fifo, 3_000, 12);
}

#[test]
fn tpca_on_locality_gathering() {
    run_and_check(PolicyKind::LocalityGathering, 3_000, 13);
}

#[test]
fn tpca_on_hybrid() {
    run_and_check(PolicyKind::paper_default(), 3_000, 14);
}

#[test]
fn tpca_with_power_failures_between_batches() {
    let (mut store, scale) = tpca_store(PolicyKind::paper_default());
    let db = FunctionalTpca::setup(&mut store, scale).expect("setup");
    let mut rng = Rng::seed_from(77);
    let mut expected_total = 0i64;
    for batch in 0..5 {
        for _ in 0..500 {
            let txn = Transaction::generate(scale, &mut rng);
            expected_total += txn.delta;
            db.run_transaction(&mut store, &txn).expect("transaction");
        }
        store.power_failure();
        let report = store.recover().unwrap();
        assert!(!report.resumed_clean, "batch {batch}: no clean was running");
    }
    let mut branches = 0i64;
    for b in 0..scale.branches {
        branches += db.balance(&mut store, 0, b).unwrap();
    }
    assert_eq!(branches, expected_total);
}

#[test]
fn tpca_transactional_abort_reverses_a_transfer() {
    let (mut store, scale) = tpca_store(PolicyKind::paper_default());
    let db = FunctionalTpca::setup(&mut store, scale).expect("setup");
    let txn_spec = Transaction {
        account: 42_000,
        teller: 4,
        branch: 0,
        delta: 777,
    };
    // Committed baseline.
    db.run_transaction(&mut store, &txn_spec).unwrap();
    assert_eq!(db.balance(&mut store, 2, 42_000).unwrap(), 777);

    // Wrap the storage-level transaction (§6) around a TPC-A update by
    // routing its writes through the transaction's write set, then
    // abort: all three record updates roll back together. (Writes never
    // join a transaction implicitly — `TxnMemory` is the opt-in.)
    let hw = store.txn_begin().unwrap();
    {
        let mut mem = TxnMemory::new(&mut store, hw);
        db.run_transaction(&mut mem, &txn_spec).unwrap();
        assert_eq!(db.balance(&mut mem, 2, 42_000).unwrap(), 1_554);
    }
    store.txn_abort(hw).unwrap();
    assert_eq!(db.balance(&mut store, 2, 42_000).unwrap(), 777);
    assert_eq!(db.balance(&mut store, 1, 4).unwrap(), 777);
    assert_eq!(db.balance(&mut store, 0, 0).unwrap(), 777);
    store.check_invariants().unwrap();
}
