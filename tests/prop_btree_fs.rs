//! Property-based tests for the data structures built on the array:
//! B-Trees against `std::collections::BTreeMap`, the filesystem against
//! an in-memory map of files.

use envy::btree::BTree;
use envy::core::{EnvyConfig, EnvyStore, VecMemory};
use envy::ramdisk::{BlockDevice, SimpleFs};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// B-Tree over plain RAM matches BTreeMap for arbitrary insert/get
    /// interleavings.
    #[test]
    fn btree_matches_btreemap_on_ram(ops in prop::collection::vec((any::<bool>(), 0u64..500, any::<u64>()), 1..400)) {
        let mut mem = VecMemory::new(2 * 1024 * 1024);
        let mut tree = BTree::create(&mut mem, 0, 2 * 1024 * 1024).unwrap();
        let mut model = BTreeMap::new();
        for (is_insert, k, v) in ops {
            if is_insert {
                let expected = model.insert(k, v);
                let got = tree.insert(&mut mem, k, v).unwrap();
                prop_assert_eq!(got, expected);
            } else {
                prop_assert_eq!(tree.get(&mut mem, k).unwrap(), model.get(&k).copied());
                prop_assert_eq!(tree.get_probed(&mut mem, k).unwrap(), model.get(&k).copied());
            }
        }
    }

    /// The same B-Tree behaviour holds over the eNVy store (copy-on-write
    /// and cleaning underneath must be invisible).
    #[test]
    fn btree_matches_btreemap_on_envy(ops in prop::collection::vec((0u64..300, any::<u64>()), 1..200)) {
        let config = EnvyConfig::scaled(4, 16, 128, 256).with_utilization(0.6);
        let mut store = EnvyStore::new(config).unwrap();
        let region = 128 * 1024;
        let mut tree = BTree::create(&mut store, 0, region).unwrap();
        let mut model = BTreeMap::new();
        for (k, v) in ops {
            model.insert(k, v);
            tree.insert(&mut store, k, v).unwrap();
        }
        for (&k, &v) in &model {
            prop_assert_eq!(tree.get(&mut store, k).unwrap(), Some(v));
        }
        prop_assert!(store.check_invariants().is_ok());
    }

    /// Filesystem write/delete sequences match a HashMap<String, Vec<u8>>
    /// model.
    #[test]
    fn simplefs_matches_file_map(ops in prop::collection::vec((0u8..6, 0usize..2000, any::<u8>()), 1..60)) {
        let mut mem = VecMemory::new(2 * 1024 * 1024);
        let dev = BlockDevice::new(0, 512, 4096);
        let mut fs = SimpleFs::format(&mut mem, dev).unwrap();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        for (slot, size, byte) in ops {
            let name = format!("f{slot}");
            if size == 0 && model.contains_key(&name) {
                fs.delete(&mut mem, &name).unwrap();
                model.remove(&name);
            } else {
                let data = vec![byte; size];
                fs.write_file(&mut mem, &name, &data).unwrap();
                model.insert(name, data);
            }
        }
        let mut listed: Vec<String> = fs.list(&mut mem).unwrap().into_iter().map(|(n, _)| n).collect();
        listed.sort();
        let mut expected: Vec<String> = model.keys().cloned().collect();
        expected.sort();
        prop_assert_eq!(listed, expected);
        for (name, data) in &model {
            prop_assert_eq!(&fs.read_file(&mut mem, name).unwrap(), data);
        }
    }
}
