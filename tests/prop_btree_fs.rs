//! Randomized tests for the data structures built on the array:
//! B-Trees against `std::collections::BTreeMap`, the filesystem against
//! an in-memory map of files.

use envy::btree::BTree;
use envy::core::{EnvyConfig, EnvyStore, VecMemory};
use envy::ramdisk::{BlockDevice, SimpleFs};
use envy::sim::check::cases;
use std::collections::{BTreeMap, HashMap};

/// B-Tree over plain RAM matches BTreeMap for arbitrary insert/get
/// interleavings.
#[test]
fn btree_matches_btreemap_on_ram() {
    cases(0xB7EE_0001, 48, |g| {
        let ops = g.vec_of(1, 400, |g| (g.chance(0.5), g.below(500), g.u64()));
        let mut mem = VecMemory::new(2 * 1024 * 1024);
        let mut tree = BTree::create(&mut mem, 0, 2 * 1024 * 1024).unwrap();
        let mut model = BTreeMap::new();
        for (is_insert, k, v) in ops {
            if is_insert {
                let expected = model.insert(k, v);
                let got = tree.insert(&mut mem, k, v).unwrap();
                assert_eq!(got, expected);
            } else {
                assert_eq!(tree.get(&mut mem, k).unwrap(), model.get(&k).copied());
                assert_eq!(
                    tree.get_probed(&mut mem, k).unwrap(),
                    model.get(&k).copied()
                );
            }
        }
    });
}

/// Full op mix — insert, delete, point get, ordered scan — matches
/// BTreeMap for arbitrary interleavings, including scans that start
/// inside lazily-emptied leaves.
#[test]
fn btree_delete_scan_match_btreemap() {
    cases(0xB7EE_0004, 48, |g| {
        let ops = g.vec_of(1, 400, |g| (g.below(4) as u8, g.below(500), g.u64()));
        let mut mem = VecMemory::new(2 * 1024 * 1024);
        let mut tree = BTree::create(&mut mem, 0, 2 * 1024 * 1024).unwrap();
        let mut model = BTreeMap::new();
        for (op, k, v) in ops {
            match op {
                0 | 1 => {
                    // Insert twice as often as the others so the tree
                    // actually grows multiple levels.
                    let expected = model.insert(k, v);
                    assert_eq!(tree.insert(&mut mem, k, v).unwrap(), expected);
                }
                2 => {
                    let expected = model.remove(&k);
                    assert_eq!(tree.delete(&mut mem, k).unwrap(), expected);
                }
                _ => {
                    let limit = (v % 17) as usize;
                    let expected: Vec<(u64, u64)> = model
                        .range(k..)
                        .take(limit)
                        .map(|(a, b)| (*a, *b))
                        .collect();
                    assert_eq!(tree.scan(&mut mem, k, limit).unwrap(), expected);
                }
            }
        }
        // Final full scan is the sorted model.
        let all: Vec<(u64, u64)> = model.iter().map(|(a, b)| (*a, *b)).collect();
        assert_eq!(tree.scan(&mut mem, 0, usize::MAX).unwrap(), all);
    });
}

/// The same B-Tree behaviour holds over the eNVy store (copy-on-write
/// and cleaning underneath must be invisible).
#[test]
fn btree_matches_btreemap_on_envy() {
    cases(0xB7EE_0002, 48, |g| {
        let ops = g.vec_of(1, 200, |g| (g.below(300), g.u64()));
        let config = EnvyConfig::scaled(4, 16, 128, 256).with_utilization(0.6);
        let mut store = EnvyStore::new(config).unwrap();
        let region = 128 * 1024;
        let mut tree = BTree::create(&mut store, 0, region).unwrap();
        let mut model = BTreeMap::new();
        for (k, v) in ops {
            model.insert(k, v);
            tree.insert(&mut store, k, v).unwrap();
        }
        for (&k, &v) in &model {
            assert_eq!(tree.get(&mut store, k).unwrap(), Some(v));
        }
        store.check_invariants().unwrap();
    });
}

/// Filesystem write/delete sequences match a HashMap<String, Vec<u8>>
/// model.
#[test]
fn simplefs_matches_file_map() {
    cases(0xB7EE_0003, 48, |g| {
        let ops = g.vec_of(1, 60, |g| (g.below(6) as u8, g.usize_in(0, 2000), g.byte()));
        let mut mem = VecMemory::new(2 * 1024 * 1024);
        let dev = BlockDevice::new(0, 512, 4096);
        let mut fs = SimpleFs::format(&mut mem, dev).unwrap();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        for (slot, size, byte) in ops {
            let name = format!("f{slot}");
            if size == 0 && model.contains_key(&name) {
                fs.delete(&mut mem, &name).unwrap();
                model.remove(&name);
            } else {
                let data = vec![byte; size];
                fs.write_file(&mut mem, &name, &data).unwrap();
                model.insert(name, data);
            }
        }
        let mut listed: Vec<String> = fs
            .list(&mut mem)
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        listed.sort();
        let mut expected: Vec<String> = model.keys().cloned().collect();
        expected.sort();
        assert_eq!(listed, expected);
        for (name, data) in &model {
            assert_eq!(&fs.read_file(&mut mem, name).unwrap(), data);
        }
    });
}
