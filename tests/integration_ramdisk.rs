//! Cross-crate integration: the filesystem stack over the eNVy array.

use envy::core::{EnvyConfig, EnvyStore};
use envy::ramdisk::{BlockDevice, SimpleFs};
use envy::sim::rng::Rng;

fn fs_store() -> (EnvyStore, BlockDevice) {
    let config = EnvyConfig::scaled(4, 32, 256, 256).with_utilization(0.7);
    let store = EnvyStore::new(config).expect("valid config");
    let blocks = store.size() / 512 - 16;
    (store, BlockDevice::new(0, 512, blocks))
}

#[test]
fn file_churn_over_envy_triggers_cleaning() {
    let (mut store, dev) = fs_store();
    let mut fs = SimpleFs::format(&mut store, dev).unwrap();
    let mut rng = Rng::seed_from(3);
    // Repeatedly rewrite a rotating set of files with random sizes.
    for round in 0..600u32 {
        let name = format!("file{}", round % 8);
        let size = 512 + (rng.below(20) as usize) * 512;
        let byte = (round % 251) as u8;
        fs.write_file(&mut store, &name, &vec![byte; size]).unwrap();
    }
    assert!(store.stats().cleans.get() > 0, "cleaning under file churn");
    // The last write of each name wins.
    for slot in 0..8u32 {
        let name = format!("file{slot}");
        let contents = fs.read_file(&mut store, &name).unwrap();
        let last_round = (592..600).find(|r| r % 8 == slot).unwrap();
        assert!(contents.iter().all(|&b| b == (last_round % 251) as u8));
    }
    store.check_invariants().unwrap();
}

#[test]
fn filesystem_survives_power_failure_mid_usage() {
    let (mut store, dev) = fs_store();
    let mut fs = SimpleFs::format(&mut store, dev).unwrap();
    fs.write_file(&mut store, "a", &[1u8; 5_000]).unwrap();
    fs.write_file(&mut store, "b", &[2u8; 3_000]).unwrap();
    store.power_failure();
    store.recover().unwrap();
    let fs2 = SimpleFs::mount(&mut store, dev).unwrap();
    assert_eq!(fs2.read_file(&mut store, "a").unwrap(), vec![1u8; 5_000]);
    assert_eq!(fs2.read_file(&mut store, "b").unwrap(), vec![2u8; 3_000]);
}

#[test]
fn filesystem_survives_interrupted_clean() {
    let (mut store, dev) = fs_store();
    let mut fs = SimpleFs::format(&mut store, dev).unwrap();
    fs.write_file(&mut store, "precious", &[0xABu8; 20_000])
        .unwrap();
    let pos = (0..store.engine().positions())
        .max_by_key(|&p| {
            store
                .engine()
                .flash()
                .valid_pages(store.engine().segment_at(p))
        })
        .expect("positions exist");
    let mut ops = Vec::new();
    store
        .engine_mut()
        .clean_interrupted(pos, 5, &mut ops)
        .unwrap();
    store.power_failure();
    let report = store.recover().unwrap();
    assert!(report.resumed_clean);
    let fs2 = SimpleFs::mount(&mut store, dev).unwrap();
    assert_eq!(
        fs2.read_file(&mut store, "precious").unwrap(),
        vec![0xABu8; 20_000]
    );
    store.check_invariants().unwrap();
}
