//! Property-based tests: the eNVy store behaves exactly like plain RAM
//! (differential model), and structural invariants hold after arbitrary
//! operation sequences.

use envy::core::{EnvyConfig, EnvyStore, Memory, PolicyKind, VecMemory};
use proptest::prelude::*;

/// An operation against the linear array.
#[derive(Debug, Clone)]
enum Op {
    Write { addr: u64, bytes: Vec<u8> },
    Read { addr: u64, len: usize },
    PowerFail,
    FlushAll,
}

const SIZE: u64 = 16 * 16 * 256 / 2; // small_test logical bytes (50% of 16x16 pages)

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..SIZE - 64, prop::collection::vec(any::<u8>(), 1..64)).prop_map(|(addr, bytes)| {
            Op::Write { addr, bytes }
        }),
        3 => (0..SIZE - 64, 1..64usize).prop_map(|(addr, len)| Op::Read { addr, len }),
        1 => Just(Op::PowerFail),
        1 => Just(Op::FlushAll),
    ]
}

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Greedy),
        Just(PolicyKind::Fifo),
        Just(PolicyKind::LocalityGathering),
        Just(PolicyKind::Hybrid { segments_per_partition: 4 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential test: any sequence of writes/reads/power-failures
    /// observed through eNVy matches plain RAM initialized to 0xFF.
    #[test]
    fn envy_equals_plain_ram(policy in policy_strategy(), ops in prop::collection::vec(op_strategy(), 1..120)) {
        let config = EnvyConfig::small_test().with_policy(policy);
        let mut envy = EnvyStore::new(config).unwrap();
        let mut model = VecMemory::new(SIZE);
        // eNVy reads 0xFF from unwritten pages; align the model.
        let ff = vec![0xFFu8; SIZE as usize];
        model.write(0, &ff).unwrap();

        for op in &ops {
            match op {
                Op::Write { addr, bytes } => {
                    envy.write(*addr, bytes).unwrap();
                    model.write(*addr, bytes).unwrap();
                }
                Op::Read { addr, len } => {
                    let mut a = vec![0u8; *len];
                    let mut b = vec![0u8; *len];
                    envy.read(*addr, &mut a).unwrap();
                    model.read(*addr, &mut b).unwrap();
                    prop_assert_eq!(&a, &b);
                }
                Op::PowerFail => {
                    envy.power_failure();
                    envy.recover().unwrap();
                }
                Op::FlushAll => envy.flush_all().unwrap(),
            }
        }
        // Full-array sweep at the end.
        let mut a = vec![0u8; SIZE as usize];
        let mut b = vec![0u8; SIZE as usize];
        envy.read(0, &mut a).unwrap();
        model.read(0, &mut b).unwrap();
        prop_assert_eq!(a, b);
        prop_assert!(envy.check_invariants().is_ok());
    }

    /// Transactions: abort restores exactly the pre-transaction state;
    /// commit preserves exactly the post-transaction state.
    #[test]
    fn txn_abort_is_exact_inverse(
        pre in prop::collection::vec((0..SIZE - 8, any::<u64>()), 1..20),
        during in prop::collection::vec((0..SIZE - 8, any::<u64>()), 1..20),
        commit in any::<bool>(),
    ) {
        let mut envy = EnvyStore::new(EnvyConfig::small_test()).unwrap();
        for (addr, v) in &pre {
            envy.write(*addr, &v.to_le_bytes()).unwrap();
        }
        let mut snapshot = vec![0u8; SIZE as usize];
        envy.read(0, &mut snapshot).unwrap();

        let txn = envy.txn_begin().unwrap();
        for (addr, v) in &during {
            envy.write(*addr, &v.to_le_bytes()).unwrap();
        }
        let mut dirty = vec![0u8; SIZE as usize];
        envy.read(0, &mut dirty).unwrap();

        if commit {
            envy.txn_commit(txn).unwrap();
            let mut after = vec![0u8; SIZE as usize];
            envy.read(0, &mut after).unwrap();
            prop_assert_eq!(after, dirty);
        } else {
            envy.txn_abort(txn).unwrap();
            let mut after = vec![0u8; SIZE as usize];
            envy.read(0, &mut after).unwrap();
            prop_assert_eq!(after, snapshot);
        }
        prop_assert!(envy.check_invariants().is_ok());
    }

    /// Interrupted cleans recover to a consistent state with no data
    /// loss, wherever the interruption lands.
    #[test]
    fn interrupted_clean_never_loses_data(
        writes in prop::collection::vec((0..SIZE - 8, any::<u64>()), 10..60),
        pos in 0u32..15,
        after in 1u32..10,
    ) {
        let mut envy = EnvyStore::new(EnvyConfig::small_test()).unwrap();
        envy.prefill().unwrap();
        for (addr, v) in &writes {
            envy.write(*addr, &v.to_le_bytes()).unwrap();
        }
        let mut before = vec![0u8; SIZE as usize];
        envy.read(0, &mut before).unwrap();

        let mut ops = Vec::new();
        envy.engine_mut().clean_interrupted(pos, after, &mut ops).unwrap();
        envy.power_failure();
        envy.recover().unwrap();

        let mut recovered = vec![0u8; SIZE as usize];
        envy.read(0, &mut recovered).unwrap();
        prop_assert_eq!(before, recovered);
        prop_assert!(envy.check_invariants().is_ok());
    }
}
