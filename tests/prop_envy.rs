//! Randomized differential tests: the eNVy store behaves exactly like
//! plain RAM (differential model), and structural invariants hold after
//! arbitrary operation sequences.

use envy::core::{EnvyConfig, EnvyStore, Memory, PolicyKind, VecMemory};
use envy::sim::check::{cases, Gen};

/// An operation against the linear array.
#[derive(Debug, Clone)]
enum Op {
    Write { addr: u64, bytes: Vec<u8> },
    Read { addr: u64, len: usize },
    PowerFail,
    FlushAll,
}

const SIZE: u64 = 16 * 16 * 256 / 2; // small_test logical bytes (50% of 16x16 pages)

fn gen_op(g: &mut Gen) -> Op {
    // Weights mirror the original strategy: 4 write : 3 read : 1 : 1.
    match g.below(9) {
        0..=3 => Op::Write {
            addr: g.below(SIZE - 64),
            bytes: g.bytes(1, 64),
        },
        4..=6 => Op::Read {
            addr: g.below(SIZE - 64),
            len: g.usize_in(1, 64),
        },
        7 => Op::PowerFail,
        _ => Op::FlushAll,
    }
}

fn gen_policy(g: &mut Gen) -> PolicyKind {
    *g.pick(&[
        PolicyKind::Greedy,
        PolicyKind::Fifo,
        PolicyKind::LocalityGathering,
        PolicyKind::Hybrid {
            segments_per_partition: 4,
        },
    ])
}

/// Differential test: any sequence of writes/reads/power-failures
/// observed through eNVy matches plain RAM initialized to 0xFF.
#[test]
fn envy_equals_plain_ram() {
    cases(0xE4E4_0001, 64, |g| {
        let policy = gen_policy(g);
        let ops = g.vec_of(1, 120, gen_op);
        let config = EnvyConfig::small_test().with_policy(policy);
        let mut envy = EnvyStore::new(config).unwrap();
        let mut model = VecMemory::new(SIZE);
        // eNVy reads 0xFF from unwritten pages; align the model.
        let ff = vec![0xFFu8; SIZE as usize];
        model.write(0, &ff).unwrap();

        for op in &ops {
            match op {
                Op::Write { addr, bytes } => {
                    envy.write(*addr, bytes).unwrap();
                    model.write(*addr, bytes).unwrap();
                }
                Op::Read { addr, len } => {
                    let mut a = vec![0u8; *len];
                    let mut b = vec![0u8; *len];
                    envy.read(*addr, &mut a).unwrap();
                    model.read(*addr, &mut b).unwrap();
                    assert_eq!(&a, &b);
                }
                Op::PowerFail => {
                    envy.power_failure();
                    envy.recover().unwrap();
                }
                Op::FlushAll => envy.flush_all().unwrap(),
            }
        }
        // Full-array sweep at the end.
        let mut a = vec![0u8; SIZE as usize];
        let mut b = vec![0u8; SIZE as usize];
        envy.read(0, &mut a).unwrap();
        model.read(0, &mut b).unwrap();
        assert_eq!(a, b);
        envy.check_invariants().unwrap();
    });
}

/// Transactions: abort restores exactly the pre-transaction state;
/// commit preserves exactly the post-transaction state.
#[test]
fn txn_abort_is_exact_inverse() {
    cases(0xE4E4_0002, 64, |g| {
        let pre = g.vec_of(1, 20, |g| (g.below(SIZE - 8), g.u64()));
        let during = g.vec_of(1, 20, |g| (g.below(SIZE - 8), g.u64()));
        let commit = g.chance(0.5);
        let mut envy = EnvyStore::new(EnvyConfig::small_test()).unwrap();
        for (addr, v) in &pre {
            envy.write(*addr, &v.to_le_bytes()).unwrap();
        }
        let mut snapshot = vec![0u8; SIZE as usize];
        envy.read(0, &mut snapshot).unwrap();

        let txn = envy.txn_begin().unwrap();
        for (addr, v) in &during {
            envy.txn_write(txn, *addr, &v.to_le_bytes()).unwrap();
        }
        let mut dirty = vec![0u8; SIZE as usize];
        envy.read(0, &mut dirty).unwrap();

        if commit {
            envy.txn_commit(txn).unwrap();
            let mut after = vec![0u8; SIZE as usize];
            envy.read(0, &mut after).unwrap();
            assert_eq!(after, dirty);
        } else {
            envy.txn_abort(txn).unwrap();
            let mut after = vec![0u8; SIZE as usize];
            envy.read(0, &mut after).unwrap();
            assert_eq!(after, snapshot);
        }
        envy.check_invariants().unwrap();
    });
}

/// Interrupted cleans recover to a consistent state with no data loss,
/// wherever the interruption lands.
#[test]
fn interrupted_clean_never_loses_data() {
    cases(0xE4E4_0003, 64, |g| {
        let writes = g.vec_of(10, 60, |g| (g.below(SIZE - 8), g.u64()));
        let pos = g.below(15) as u32;
        let after = g.range(1, 10) as u32;
        let mut envy = EnvyStore::new(EnvyConfig::small_test()).unwrap();
        envy.prefill().unwrap();
        for (addr, v) in &writes {
            envy.write(*addr, &v.to_le_bytes()).unwrap();
        }
        let mut before = vec![0u8; SIZE as usize];
        envy.read(0, &mut before).unwrap();

        let mut ops = Vec::new();
        envy.engine_mut()
            .clean_interrupted(pos, after, &mut ops)
            .unwrap();
        envy.power_failure();
        envy.recover().unwrap();

        let mut recovered = vec![0u8; SIZE as usize];
        envy.read(0, &mut recovered).unwrap();
        assert_eq!(before, recovered);
        envy.check_invariants().unwrap();
    });
}
