//! Regression tests for the paper's headline claims, at test-sized
//! scales. Each test names the claim it pins down; EXPERIMENTS.md holds
//! the full-scale numbers. These are deliberately loose bounds — they
//! guard the *shape* of each result against regressions, not exact
//! values.

use envy::core::{lifetime_days, EnvyConfig, EnvyStore, PolicyKind};
use envy::sim::time::Ns;
use envy::workload::{run_timed, AnalyticTpca, CleaningStudy, TpcaScale};

fn quick_study(policy: PolicyKind, locality: (u32, u32)) -> f64 {
    CleaningStudy::sized(64, 128, policy, locality)
        .run()
        .expect("study runs")
        .cleaning_cost
}

/// §4.2 / Figure 8: greedy degrades as locality of reference rises.
#[test]
fn claim_greedy_degrades_with_locality() {
    let uniform = quick_study(PolicyKind::Greedy, (50, 50));
    let skewed = quick_study(PolicyKind::Greedy, (5, 95));
    assert!(skewed > uniform * 1.3, "greedy: {uniform} -> {skewed}");
}

/// §4.3 / Figure 8: locality gathering is pinned near cost 4 under
/// uniform traffic (the 80%-utilization fixed point) and improves
/// substantially under high locality.
#[test]
fn claim_locality_gathering_shape() {
    let uniform = quick_study(PolicyKind::LocalityGathering, (50, 50));
    let skewed = quick_study(PolicyKind::LocalityGathering, (5, 95));
    assert!(
        (3.3..5.2).contains(&uniform),
        "LG uniform cost {uniform} should sit near 4"
    );
    assert!(skewed < uniform * 0.6, "LG: {uniform} -> {skewed}");
}

/// §4.4 / Figure 8: the hybrid tracks greedy under uniform traffic and
/// stays at or near pure locality gathering under skew. Tested at the
/// paper's geometry (128 segments, 16-segment partitions).
#[test]
fn claim_hybrid_is_best_of_both() {
    let study = |policy, locality| {
        CleaningStudy::sized(128, 128, policy, locality)
            .run()
            .expect("study runs")
            .cleaning_cost
    };
    for locality in [(50u32, 50u32), (20, 80), (5, 95)] {
        let hybrid = study(
            PolicyKind::Hybrid {
                segments_per_partition: 16,
            },
            locality,
        );
        let lg = study(PolicyKind::LocalityGathering, locality);
        // Allow a modest margin at extreme skew, where Figure 9 shows
        // the smallest partitions can edge ahead.
        assert!(
            hybrid < lg * 1.25,
            "hybrid {hybrid} should stay competitive with LG {lg} at {locality:?}"
        );
    }
    let hybrid_uniform = study(
        PolicyKind::Hybrid {
            segments_per_partition: 16,
        },
        (50, 50),
    );
    let greedy_uniform = study(PolicyKind::Greedy, (50, 50));
    assert!(
        hybrid_uniform < greedy_uniform * 1.5,
        "hybrid {hybrid_uniform} should stay close to greedy {greedy_uniform} at uniform"
    );
}

/// Figure 9: partition sizes of 1 (pure LG) and the full array (pure
/// FIFO) are both worse overall than a mid-sized partition.
#[test]
fn claim_partition_size_sweet_spot() {
    let at = |k: u32, loc: (u32, u32)| {
        quick_study(
            PolicyKind::Hybrid {
                segments_per_partition: k,
            },
            loc,
        )
    };
    // Mid-size wins under skew vs full-array FIFO…
    assert!(at(8, (5, 95)) < at(63, (5, 95)));
    // …and under uniform vs single-segment LG.
    assert!(at(8, (50, 50)) < at(1, (50, 50)));
}

/// Figure 6: cleaning cost explodes past 80 % utilization (the paper's
/// reason for the 80 % cap).
#[test]
fn claim_cost_knee_past_80_percent() {
    let mut low = CleaningStudy::sized(32, 128, PolicyKind::Fifo, (50, 50));
    low.utilization = 0.5;
    let mut high = CleaningStudy::sized(32, 128, PolicyKind::Fifo, (50, 50));
    high.utilization = 0.92;
    let low = low.run().unwrap().cleaning_cost;
    let high = high.run().unwrap().cleaning_cost;
    assert!(high > low * 5.0, "cost knee: {low} -> {high}");
}

fn timed_tpca() -> (EnvyStore, AnalyticTpca) {
    let mut config = EnvyConfig::scaled(8, 64, 1024, 256).with_store_data(false);
    config.word_bytes = 8;
    config.timings.erase = Ns::from_nanos(50_000_000 * 1024 / 65_536);
    let config = config.with_utilization(0.8);
    let scale = TpcaScale::fit_bytes(config.logical_bytes());
    let mut store = EnvyStore::new(config).unwrap();
    store.prefill().unwrap();
    let driver = AnalyticTpca::new(scale);
    // Churn to cleaning steady state.
    let total = store.config().geometry.total_pages();
    let free = total - store.config().logical_pages;
    let mut rng = envy::sim::rng::Rng::seed_from(1);
    for _ in 0..free * 2 {
        let id = rng.below(scale.accounts());
        store
            .write(driver.layout().account_addr(id), &[0u8; 8])
            .unwrap();
    }
    (store, driver)
}

/// §5.4 / Figure 15: unloaded read latency is SRAM-class (~180 ns) and
/// write latency about the same, despite Flash programs being 4 µs and
/// erases 50 ms.
#[test]
fn claim_unloaded_latencies_are_memory_class() {
    let (mut store, driver) = timed_tpca();
    let r = run_timed(&mut store, &driver, 2_000.0, 500, 5_000, 42).unwrap();
    assert!(
        r.read_latency >= Ns::from_nanos(160) && r.read_latency <= Ns::from_nanos(300),
        "read latency {}",
        r.read_latency
    );
    assert!(
        r.write_latency <= Ns::from_nanos(500),
        "write latency {}",
        r.write_latency
    );
}

/// §5.2/§5.5: TPC-A flushes about one page per transaction (the account
/// record page; teller and branch pages are absorbed by the buffer).
#[test]
fn claim_one_flush_per_transaction() {
    let (mut store, driver) = timed_tpca();
    let r = run_timed(&mut store, &driver, 5_000.0, 500, 8_000, 42).unwrap();
    let per_txn = r.flushes_per_sec / r.achieved_tps;
    assert!(
        (0.8..1.3).contains(&per_txn),
        "flushes per transaction {per_txn}"
    );
}

/// Figure 13: offered load below saturation is achieved 1:1.
#[test]
fn claim_linear_throughput_below_saturation() {
    let (mut store, driver) = timed_tpca();
    let r = run_timed(&mut store, &driver, 10_000.0, 500, 10_000, 42).unwrap();
    assert!(
        (r.achieved_tps - 10_000.0).abs() / 10_000.0 < 0.05,
        "achieved {} at offered 10k",
        r.achieved_tps
    );
}

/// §5.5: the lifetime formula at the paper's measured rates gives the
/// paper's 8.63 years.
#[test]
fn claim_lifetime_formula_matches_paper() {
    let pages = 2u64 * 1024 * 1024 * 1024 / 256;
    let days = lifetime_days(pages, 1_000_000, 10_376.0, 1.97);
    assert!((days / 365.25 - 8.63).abs() < 0.05, "{days} days");
}

/// §6: parallel background operations raise the saturated throughput.
#[test]
fn claim_parallel_ops_help_at_saturation() {
    let run_with = |parallel: u32| {
        let (store0, driver) = timed_tpca();
        let config = store0.config().clone().with_parallel_ops(parallel);
        drop(store0);
        let mut store = EnvyStore::new(config).unwrap();
        store.prefill().unwrap();
        let scale = driver.layout().scale;
        let total = store.config().geometry.total_pages();
        let free = total - store.config().logical_pages;
        let mut rng = envy::sim::rng::Rng::seed_from(1);
        for _ in 0..free * 2 {
            let id = rng.below(scale.accounts());
            store
                .write(driver.layout().account_addr(id), &[0u8; 8])
                .unwrap();
        }
        // 160 kTPS saturates the 1-way system (~78 kTPS ceiling with
        // bank-independent suspension) while 8-way reaches ~137 kTPS.
        run_timed(&mut store, &driver, 160_000.0, 1_000, 12_000, 42)
            .unwrap()
            .achieved_tps
    };
    let base = run_with(1);
    let parallel = run_with(8);
    assert!(
        parallel > base * 1.05,
        "8-way {parallel} should beat 1-way {base} at saturating load"
    );
}
