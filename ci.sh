#!/bin/sh
# Offline CI gate: formatting, lints, tests, and one end-to-end figure
# regeneration smoke test. Requires only the Rust toolchain — the
# workspace has no external crate dependencies, so everything below runs
# without network access.
set -e

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "== doc link check =="
# Every relative markdown link in README.md and docs/*.md must resolve
# to a file in the repo (anchors stripped, absolute URLs skipped).
LINK_FAIL=0
for f in README.md docs/*.md; do
  dir=$(dirname "$f")
  for link in $(grep -o ']([^)]*)' "$f" | sed 's/^](//; s/)$//'); do
    case "$link" in
      http://*|https://*|\#*) continue ;;
    esac
    target=${link%%#*}
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "broken link in $f: $link"
      LINK_FAIL=1
    fi
  done
done
test "$LINK_FAIL" = "0"

echo "== cargo test --doc =="
# Doctests are the executable half of the rustdoc pass (the transaction
# and recovery examples run for real); keep them green on their own.
cargo test --workspace --doc -q

echo "== cargo test =="
cargo test --workspace -q

echo "== smoke: concurrent read path (seqlock stress + digest anchors) =="
# Release-mode rerun of the concurrency suites: the seqlock read path
# only exhibits real races under optimized codegen and free-running
# threads, so the debug-mode run above is not enough. The core suite
# storms flush/clean/wear/recovery under concurrent readers asserting
# no torn page is ever observed; the server suite pins the 1-reader and
# inline front ends byte-identical to the monolithic store and
# exercises the Busy retry contract (see docs/CONCURRENCY.md).
cargo test --release -q -p envy-core --test concurrent_reads
cargo test --release -q -p envy-server --test concurrent_read_path

# Opt-in ThreadSanitizer pass over the same suites: CI_TSAN=1 ./ci.sh.
# Requires a nightly toolchain (-Zsanitizer) and roughly 10-20x the
# runtime, so default runs skip it; the seqlock protocol is written to
# be TSan-clean (all cross-thread publication goes through the epoch's
# acquire/release pairs — docs/CONCURRENCY.md documents the recipe).
if [ "${CI_TSAN:-0}" = "1" ]; then
  echo "== tsan: concurrent read path (nightly) =="
  RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
    cargo +nightly test -q -p envy-core --test concurrent_reads \
    --target x86_64-unknown-linux-gnu -Zbuild-std
  RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
    cargo +nightly test -q -p envy-server --test concurrent_read_path \
    --target x86_64-unknown-linux-gnu -Zbuild-std
fi

echo "== smoke: fig13_throughput --quick --jobs 2 =="
mkdir -p results
cargo run --release -q -p envy-bench --bin fig13_throughput -- --quick --jobs 2 \
  > results/ci_smoke_fig13.txt
test -s results/ci_smoke_fig13.txt
test -s results/BENCH_fig13_throughput.json

echo "== smoke: ext_fault_recovery --quick --jobs 2 =="
# Deterministic fault-injection smoke: crash at every injection point
# once (fixed seeds); the binary exits nonzero if any recovery fails.
cargo run --release -q -p envy-bench --bin ext_fault_recovery -- --quick --jobs 2 \
  > results/ci_smoke_fault_recovery.txt
grep -q "23/23 injection points crashed and recovered" results/ci_smoke_fault_recovery.txt
test -s results/BENCH_ext_fault_recovery.json

echo "== smoke: trace overhead (tracing must be behavior-neutral) =="
# The controller trace observes, never perturbs: the same benchmark run
# with tracing enabled (ENVY_TRACE=1) must produce byte-identical output.
cargo run --release -q -p envy-bench --bin fig13_throughput -- --quick --jobs 2 \
  > results/ci_smoke_fig13_plain.txt
ENVY_TRACE=1 cargo run --release -q -p envy-bench --bin fig13_throughput -- --quick --jobs 2 \
  > results/ci_smoke_fig13_traced.txt
cmp results/ci_smoke_fig13_plain.txt results/ci_smoke_fig13_traced.txt
rm -f results/ci_smoke_fig13_plain.txt results/ci_smoke_fig13_traced.txt

echo "== smoke: perf_wallclock --smoke (records, does not gate) =="
# Wall-clock trajectory: every CI run refreshes results/BENCH_perf_wallclock.json
# so data-plane slowdowns show up as numbers (see docs/PERFORMANCE.md).
# No threshold is enforced — wall time on shared runners is too noisy to
# gate on; the report-schema check below still validates the file.
cargo run --release -q -p envy-bench --bin perf_wallclock -- --smoke \
  > results/ci_smoke_perf_wallclock.txt
test -s results/ci_smoke_perf_wallclock.txt
test -s results/BENCH_perf_wallclock.json

echo "== smoke: ext_serve --quick (sharded serving scalability) =="
# Closed-loop shard-count sweep plus the determinism anchor: a 1-shard
# front-end run must land on exactly the monolithic store's simulated
# clock and stats — the binary asserts it and prints the anchor line.
cargo run --release -q -p envy-bench --bin ext_serve -- --quick \
  > results/ci_smoke_ext_serve.txt
grep -q "anchor: 1-shard front end == monolithic store" results/ci_smoke_ext_serve.txt
# The quick run also drives the event-loop connection axis: a closed-loop
# socket-vs-in-process ratio, a 100/1000-connection open-loop mini-sweep
# (the 10k point is full-run only), and the idle-connection cost table.
grep -q "socket drivers at" results/ci_smoke_ext_serve.txt
grep -q "p999 growth 100 -> 1000 connections" results/ci_smoke_ext_serve.txt
grep -q "idle-connection cost" results/ci_smoke_ext_serve.txt
test -s results/BENCH_ext_serve.json

echo "== smoke: ext_txn --quick (atomic transactions over the wire) =="
# Abort-rate sweep (4 transaction slots per shard), 1/2/4/8-slot
# concurrency sweep, and cleaner-pressure table plus the wire anchor: a
# seeded atomic TPC-A run (nonzero aborts) through a real TCP server
# must match the monolithic in-process replay exactly — the binary
# asserts it (clock, stats, bytes) and prints the anchor line.
cargo run --release -q -p envy-bench --bin ext_txn -- --quick \
  > results/ci_smoke_ext_txn.txt
grep -q "anchor: atomic TPC-A over the wire == monolithic replay" results/ci_smoke_ext_txn.txt
test -s results/BENCH_ext_txn.json

echo "== smoke: ext_ycsb --quick (KV serving under YCSB mixes) =="
# YCSB A-E over the KV wire ops plus the KV wire anchor: a seeded atomic
# YCSB-A run (nonzero aborts) through a real TCP server must match the
# monolithic in-process replay exactly — the binary asserts it (clock,
# stats, bytes) and prints the anchor line. The report also carries the
# uniform-vs-zipfian wear rows (see docs/KV.md).
cargo run --release -q -p envy-bench --bin ext_ycsb -- --quick \
  > results/ci_smoke_ext_ycsb.txt
grep -q "anchor: atomic YCSB-A over the wire == monolithic replay" results/ci_smoke_ext_ycsb.txt
test -s results/BENCH_ext_ycsb.json

echo "== smoke: envy-served (epoll driver) + 4-client socket loadgen =="
# Serve on a Unix socket under the default epoll event loop, drive 4
# client connections closed-loop, then shut the server down over the
# wire; the daemon must drain, report a clean summary, and remove its
# socket file.
SERVE_SOCK="results/ci_serve.sock"
rm -f "$SERVE_SOCK"
cargo build --release -q -p envy-server --bin envy-served
cargo build --release -q --bin envy-cli
./target/release/envy-served --unix "$SERVE_SOCK" --shards 2 --txn-slots 4 --scale small \
  --net-driver epoll > results/ci_smoke_serve_daemon.txt 2>&1 &
SERVED_PID=$!
for _ in $(seq 1 100); do test -S "$SERVE_SOCK" && break; sleep 0.1; done
test -S "$SERVE_SOCK"
./target/release/envy-cli bench-serve --unix "$SERVE_SOCK" --shards 2 --scale small \
  --clients 4 --txns 250 > results/ci_smoke_serve_load.txt
# KV leg: the same daemon serves the four KV wire ops (docs/KV.md);
# put/get/scan/delete round-trip through envy-cli against shard 1.
./target/release/envy-cli kv-put --unix "$SERVE_SOCK" --shard 1 --key 7 --value hello \
  > results/ci_smoke_serve_kv.txt
./target/release/envy-cli kv-get --unix "$SERVE_SOCK" --shard 1 --key 7 \
  >> results/ci_smoke_serve_kv.txt
./target/release/envy-cli kv-scan --unix "$SERVE_SOCK" --shard 1 --start 0 --limit 5 \
  >> results/ci_smoke_serve_kv.txt
./target/release/envy-cli kv-del --unix "$SERVE_SOCK" --shard 1 --key 7 \
  >> results/ci_smoke_serve_kv.txt
./target/release/envy-cli kv-get --unix "$SERVE_SOCK" --shard 1 --key 7 \
  >> results/ci_smoke_serve_kv.txt
printf 'ok\nhello\n7\thello\n(1 records)\ndeleted\n(miss)\n' \
  | cmp - results/ci_smoke_serve_kv.txt
# Second leg: the same daemon (4 transaction slots per shard) serves
# atomic transactions (TXN_BEGIN .. TXN_COMMIT/TXN_ABORT over the wire)
# with a seeded abort fraction; write-set conflicts abort-and-retry.
./target/release/envy-cli bench-serve --unix "$SERVE_SOCK" --shards 2 --scale small \
  --clients 2 --txns 100 --atomic 0.2 --shutdown > results/ci_smoke_serve_txn.txt
wait "$SERVED_PID"
grep -Eq "completed txns +1000" results/ci_smoke_serve_load.txt
grep -Eq "errors +0" results/ci_smoke_serve_load.txt
grep -Eq "aborted txns +[1-9]" results/ci_smoke_serve_txn.txt
grep -Eq "errors +0" results/ci_smoke_serve_txn.txt
grep -q "(0 timed out)" results/ci_smoke_serve_daemon.txt
grep -q "epoll driver" results/ci_smoke_serve_daemon.txt
test ! -e "$SERVE_SOCK"

echo "== smoke: envy-served (threads driver A/B) =="
# The legacy thread-per-connection driver stays selectable and must
# serve the same load cleanly — the cross-driver equivalence tests in
# crates/server/tests/driver_diff.rs pin the wire bytes; this leg pins
# the daemon wiring.
rm -f "$SERVE_SOCK"
./target/release/envy-served --unix "$SERVE_SOCK" --shards 2 --txn-slots 4 --scale small \
  --net-driver threads --idle-timeout-ms 30000 \
  > results/ci_smoke_serve_daemon_threads.txt 2>&1 &
SERVED_PID=$!
for _ in $(seq 1 100); do test -S "$SERVE_SOCK" && break; sleep 0.1; done
test -S "$SERVE_SOCK"
./target/release/envy-cli bench-serve --unix "$SERVE_SOCK" --shards 2 --scale small \
  --clients 4 --txns 250 --shutdown > results/ci_smoke_serve_load_threads.txt
wait "$SERVED_PID"
grep -Eq "completed txns +1000" results/ci_smoke_serve_load_threads.txt
grep -Eq "errors +0" results/ci_smoke_serve_load_threads.txt
grep -q "threads driver" results/ci_smoke_serve_daemon_threads.txt
test ! -e "$SERVE_SOCK"

echo "== report schema check =="
# Every committed results/BENCH_*.json must parse and carry report_version.
cargo test --release -q -p envy-bench --test report_schema

echo "ci: all checks passed"
