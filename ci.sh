#!/bin/sh
# Offline CI gate: formatting, lints, tests, and one end-to-end figure
# regeneration smoke test. Requires only the Rust toolchain — the
# workspace has no external crate dependencies, so everything below runs
# without network access.
set -e

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== smoke: fig13_throughput --quick --jobs 2 =="
mkdir -p results
cargo run --release -q -p envy-bench --bin fig13_throughput -- --quick --jobs 2 \
  > results/ci_smoke_fig13.txt
test -s results/ci_smoke_fig13.txt
test -s results/BENCH_fig13_throughput.json

echo "ci: all checks passed"
